(* Experiment-harness smoke and shape tests: each paper artifact runs
   and exhibits its qualitative claim. Kept small enough for CI. *)

let find_row outcome variant =
  List.find
    (fun row -> row.Experiments.Fig5.variant = variant)
    outcome.Experiments.Fig5.rows

let test_fig5_shape () =
  let outcome = Experiments.Fig5.run ~drops:6 () in
  let bw v = (find_row outcome v).Experiments.Fig5.throughput_bps in
  Alcotest.(check bool) "rr > newreno" true
    (bw Core.Variant.Rr > bw Core.Variant.Newreno);
  Alcotest.(check bool) "sack > newreno" true
    (bw Core.Variant.Sack > bw Core.Variant.Newreno);
  Alcotest.(check bool) "tahoe > newreno at 6 drops" true
    (bw Core.Variant.Tahoe > bw Core.Variant.Newreno);
  Alcotest.(check bool) "rr within 25% of sack" true
    (bw Core.Variant.Rr > 0.75 *. bw Core.Variant.Sack);
  let rr = find_row outcome Core.Variant.Rr in
  Alcotest.(check int) "rr: no timeouts" 0 rr.Experiments.Fig5.timeouts;
  Alcotest.(check int) "rr: exactly the 6 retransmissions" 6
    rr.Experiments.Fig5.retransmits

let test_fig5_3drop_recovers () =
  let outcome = Experiments.Fig5.run ~drops:3 () in
  List.iter
    (fun row ->
      Alcotest.(check bool)
        (Core.Variant.name row.Experiments.Fig5.variant ^ " recovered")
        true
        (row.Experiments.Fig5.recovery_seconds <> None))
    outcome.Experiments.Fig5.rows

let test_fig5_report_renders () =
  let report = Experiments.Fig5.report (Experiments.Fig5.run ~drops:3 ()) in
  Alcotest.(check bool) "mentions figure" true
    (String.length report > 100 && String.sub report 0 8 = "Figure 5")

let test_fig6_shape () =
  (* The paper's 6-second horizon; shorter runs are dominated by the
     staggered start-up transient. *)
  let outcome =
    Experiments.Fig6.run ~variants:Core.Variant.[ Newreno; Rr ] ~duration:6.0 ()
  in
  match outcome.Experiments.Fig6.results with
  | [ newreno; rr ] ->
    Alcotest.(check bool)
      (Printf.sprintf "rr flow1 %.0f >= newreno %.0f"
         rr.Experiments.Fig6.throughput_bps
         newreno.Experiments.Fig6.throughput_bps)
      true
      (rr.Experiments.Fig6.throughput_bps
      >= newreno.Experiments.Fig6.throughput_bps);
    Alcotest.(check bool) "sends recorded" true
      (List.length rr.Experiments.Fig6.sends > 50)
  | _ -> Alcotest.fail "two results expected"

let test_fig7_point () =
  let outcome =
    Experiments.Fig7.run ~loss_rates:[ 0.02 ] ~seeds:[ 3L ] ~duration:40.0 ()
  in
  match outcome.Experiments.Fig7.points with
  | [ point ] ->
    Alcotest.(check (float 1e-6)) "model" (sqrt 1.5 /. sqrt 0.02)
      point.Experiments.Fig7.model_window;
    List.iter
      (fun (variant, window, _) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s window %.1f sane" (Core.Variant.name variant)
             window)
          true
          (window > 2.0 && window < 21.0))
      point.Experiments.Fig7.measured
  | _ -> Alcotest.fail "one point expected"

let test_fig7_droop_at_high_loss () =
  let outcome =
    Experiments.Fig7.run ~loss_rates:[ 0.005; 0.1 ]
      ~variants:[ Core.Variant.Rr ] ~seeds:[ 3L ] ~duration:60.0 ()
  in
  match outcome.Experiments.Fig7.points with
  | [ low; high ] ->
    let window p =
      match p.Experiments.Fig7.measured with
      | [ (_, w, _) ] -> w
      | _ -> Alcotest.fail "one variant"
    in
    let ratio_low = window low /. low.Experiments.Fig7.model_window in
    let ratio_high = window high /. high.Experiments.Fig7.model_window in
    Alcotest.(check bool)
      (Printf.sprintf "fit degrades: %.2f -> %.2f" ratio_low ratio_high)
      true (ratio_high < ratio_low)
  | _ -> Alcotest.fail "two points expected"

let test_scenario_rtt_estimate () =
  let rtt =
    Experiments.Scenario.rtt_estimate
      (Net.Dumbbell.paper_config ~flows:1)
      ~mss:1000 ~ack_size:40
  in
  (* The §4 nominal RTT: about 200 ms. *)
  Alcotest.(check bool)
    (Printf.sprintf "rtt %.4f near 0.2 s" rtt)
    true
    (rtt > 0.19 && rtt < 0.22)

let test_scenario_flow_count_checked () =
  let spec =
    Experiments.Scenario.make
      ~topology:(Experiments.Scenario.dumbbell (Net.Dumbbell.paper_config ~flows:2))
      ~flows:[ Experiments.Scenario.flow Core.Variant.Rr ]
      ~duration:1.0 ()
  in
  Alcotest.check_raises "mismatch"
    (Invalid_argument
       "Scenario.run: flow + cross-traffic specs do not match topology width")
    (fun () -> ignore (Experiments.Scenario.run spec))

let test_ack_loss_shape () =
  let outcome =
    Experiments.Ack_loss.run ~rates:[ 0.0; 0.2 ] ~seeds:[ 2L; 19L ]
      ~variants:Core.Variant.[ Newreno; Rr ] ()
  in
  match outcome.Experiments.Ack_loss.points with
  | [ clean; lossy ] ->
    let goodput point variant =
      let cell =
        List.find
          (fun c -> c.Experiments.Ack_loss.variant = variant)
          point.Experiments.Ack_loss.cells
      in
      cell.Experiments.Ack_loss.throughput_bps
    in
    List.iter
      (fun v ->
        Alcotest.(check bool)
          (Core.Variant.name v ^ " degrades under ack loss")
          true
          (goodput lossy v < goodput clean v))
      Core.Variant.[ Newreno; Rr ]
  | _ -> Alcotest.fail "two points expected"

let test_sync_shape () =
  let outcome =
    Experiments.Sync.run ~variants:[ Core.Variant.Reno ] ~duration:20.0 ()
  in
  match outcome.Experiments.Sync.rows with
  | [ droptail; red ] ->
    Alcotest.(check string) "order" "drop-tail" droptail.Experiments.Sync.gateway;
    Alcotest.(check bool)
      (Printf.sprintf "droptail sync %.2f > red %.2f"
         droptail.Experiments.Sync.sync_index red.Experiments.Sync.sync_index)
      true
      (droptail.Experiments.Sync.sync_index > red.Experiments.Sync.sync_index);
    Alcotest.(check bool) "red spreads losses over more events" true
      (red.Experiments.Sync.loss_events > droptail.Experiments.Sync.loss_events)
  | _ -> Alcotest.fail "two rows expected"

let test_smooth_shape () =
  let outcome = Experiments.Smooth.run ~variants:[ Core.Variant.Rr ] () in
  match outcome.Experiments.Smooth.rows with
  | [ plain; smooth ] ->
    Alcotest.(check bool) "flag wiring" true
      ((not plain.Experiments.Smooth.smooth) && smooth.Experiments.Smooth.smooth);
    Alcotest.(check bool)
      (Printf.sprintf "smooth start-up drops %d <= plain %d"
         smooth.Experiments.Smooth.startup_drops
         plain.Experiments.Smooth.startup_drops)
      true
      (smooth.Experiments.Smooth.startup_drops
      <= plain.Experiments.Smooth.startup_drops)
  | _ -> Alcotest.fail "two rows expected"

let test_fig7_delack_model_constant () =
  let outcome =
    Experiments.Fig7.run ~loss_rates:[ 0.02 ] ~variants:[ Core.Variant.Rr ]
      ~seeds:[ 3L ] ~duration:20.0 ~delayed_ack:true ()
  in
  Alcotest.(check (float 1e-9)) "delack constant" (sqrt 0.75)
    outcome.Experiments.Fig7.c_model

let run_tiny_scenario () =
  Experiments.Scenario.run
    (Experiments.Scenario.make
       ~topology:(Experiments.Scenario.dumbbell (Net.Dumbbell.paper_config ~flows:1))
       ~flows:[ Experiments.Scenario.flow Core.Variant.Rr ]
       ~params:{ Tcp.Params.default with rwnd = 20 }
       ~duration:3.0 ~monitor_queue:0.1
       ~forced_drops:[ { Net.Loss.flow = 0; seq = 5; occurrence = 1 } ]
       ())

let test_tracefile_format () =
  let t = run_tiny_scenario () in
  let trace = Experiments.Scenario.tracefile t in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' trace)
  in
  Alcotest.(check bool) "has events" true (List.length lines > 20);
  (* Every line parses into the 11 ns-2 fields, and times ascend. *)
  let parse line =
    match String.split_on_char ' ' line with
    | [ event; time; _; _; kind; size; _; flow; _; _; seq ] ->
      Alcotest.(check bool) "event tag" true
        (List.mem event [ "+"; "r"; "d" ]);
      Alcotest.(check bool) "kind" true (kind = "tcp" || kind = "ack");
      ignore (int_of_string size);
      ignore (int_of_string flow);
      ignore (int_of_string seq);
      float_of_string time
    | _ -> Alcotest.fail ("unparsable line: " ^ line)
  in
  let times = List.map parse lines in
  let rec ascending = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> a <= b && ascending rest
  in
  Alcotest.(check bool) "time ordered" true (ascending times);
  Alcotest.(check bool) "the forced drop appears" true
    (List.exists (fun l -> String.length l > 0 && l.[0] = 'd') lines)

let test_queue_occupancy_collected () =
  let t = run_tiny_scenario () in
  match t.Experiments.Scenario.queue_occupancy with
  | Some series ->
    (* ~One sample per 0.1 s over 3 s (floating-point accumulation may
       shave the final tick). *)
    let n = Stats.Series.length series in
    Alcotest.(check bool)
      (Printf.sprintf "%d samples" n)
      true
      (n >= 29 && n <= 31)
  | None -> Alcotest.fail "monitoring requested"

let test_sync_queue_cov_positive () =
  let outcome =
    Experiments.Sync.run ~variants:[ Core.Variant.Reno ] ~duration:15.0 ()
  in
  List.iter
    (fun row ->
      Alcotest.(check bool)
        (row.Experiments.Sync.gateway ^ " queue varies")
        true
        (row.Experiments.Sync.queue_cov > 0.0))
    outcome.Experiments.Sync.rows

let test_fig5_background_runs () =
  let outcome =
    Experiments.Fig5.run_background
      ~variants:Core.Variant.[ Newreno; Rr ] ()
  in
  List.iter
    (fun row ->
      Alcotest.(check bool)
        (Core.Variant.name row.Experiments.Fig5.b_variant ^ " finished")
        true
        (row.Experiments.Fig5.transfer_seconds <> None))
    outcome.Experiments.Fig5.b_rows

let test_table5_limited_transmit_restores_case4 () =
  (* The RFC 3042 extension restores fast retransmit at tiny windows;
     with it, the lone RR flow of case 4 beats the homogeneous-Reno
     baseline of case 1, the paper's §5 ordering. *)
  let outcome = Experiments.Table5.run ~limited_transmit:true () in
  let delay label =
    let case =
      List.find (fun c -> c.Experiments.Table5.label = label)
        outcome.Experiments.Table5.cases
    in
    match case.Experiments.Table5.transfer_delay with
    | Some d -> d
    | None -> Alcotest.fail (label ^ " unfinished")
  in
  Alcotest.(check bool)
    (Printf.sprintf "case4 %.1f < case1 %.1f" (delay "case 4") (delay "case 1"))
    true
    (delay "case 4" < delay "case 1")

let test_vegas_claim_shape () =
  let outcome = Experiments.Vegas_claim.run () in
  let goodput label =
    let row =
      List.find (fun r -> r.Experiments.Vegas_claim.label = label)
        outcome.Experiments.Vegas_claim.rows
    in
    row.Experiments.Vegas_claim.throughput_bps
  in
  (* [8]'s claim: the recovery mechanism carries the gain. *)
  Alcotest.(check bool) "full vegas > reno" true
    (goodput "vegas (full)" > goodput "reno");
  Alcotest.(check bool) "recovery-only captures most of the gain" true
    (goodput "vegas recovery only" > 0.8 *. goodput "vegas (full)");
  Alcotest.(check bool) "avoidance-only does not beat reno's recovery" true
    (goodput "vegas avoidance only" < goodput "vegas (full)")

let test_rtt_fairness_shape () =
  let outcome =
    Experiments.Rtt_fairness.run ~variants:[ Core.Variant.Rr ] ~duration:60.0 ()
  in
  match outcome.Experiments.Rtt_fairness.rows with
  | [ row ] ->
    (* §5: RR converges to the fair share when RTTs are equal. *)
    Alcotest.(check bool)
      (Printf.sprintf "equal-RTT Jain %.3f ~ 1"
         row.Experiments.Rtt_fairness.equal_rtt_jain)
      true
      (row.Experiments.Rtt_fairness.equal_rtt_jain > 0.95);
    Alcotest.(check bool) "hetero RTTs are less fair" true
      (row.Experiments.Rtt_fairness.hetero_jain
      <= row.Experiments.Rtt_fairness.equal_rtt_jain)
  | _ -> Alcotest.fail "one row expected"

let test_sensitivity_ordering () =
  let outcome =
    Experiments.Sensitivity.run ~buffers:[ 4; 25 ]
      ~delays:[ Sim.Units.ms 96.0 ] ()
  in
  Alcotest.(check bool) "RR > New-Reno in every cell" true
    (Experiments.Sensitivity.ordering_holds outcome);
  Alcotest.(check int) "grid size" 2
    (List.length outcome.Experiments.Sensitivity.cells)

let test_ablation_runs () =
  let outcome = Experiments.Ablation.run ~drops:3 () in
  Alcotest.(check int) "four designs" 4 (List.length outcome.Experiments.Ablation.rows);
  List.iter
    (fun row ->
      Alcotest.(check bool)
        (row.Experiments.Ablation.label ^ " produced throughput")
        true
        (row.Experiments.Ablation.throughput_bps > 0.0))
    outcome.Experiments.Ablation.rows

let test_modelcheck_relentless_tolerance () =
  (* Acceptance gate: Relentless sits within 15% of the arxiv
     1102.3270 prediction on the clean dumbbell at the rwnd-capped
     operating point (p = 0.002). Two seeds and 30 s keep this quick;
     the [modelcheck] artifact carries the full grid. *)
  let outcome =
    Experiments.Modelcheck.run
      ~variants:[ Core.Variant.Relentless; Core.Variant.Rrr ]
      ~loss_rates:[ 0.002 ] ~seeds:[ 3L; 17L ] ~duration:30.0 ()
  in
  List.iter
    (fun variant ->
      match
        Experiments.Modelcheck.deviation outcome ~variant ~loss_rate:0.002
      with
      | None -> Alcotest.fail "missing grid cell"
      | Some dev ->
        Alcotest.(check bool)
          (Printf.sprintf "%s |%+.1f%%| within 15%%"
             (Core.Variant.name variant) (100.0 *. dev))
          true
          (Float.abs dev <= 0.15))
    [ Core.Variant.Relentless; Core.Variant.Rrr ]

let suite =
  [
    ( "experiments",
      [
        Alcotest.test_case "fig5 shape" `Quick test_fig5_shape;
        Alcotest.test_case "fig5 3-drop recovers" `Quick test_fig5_3drop_recovers;
        Alcotest.test_case "fig5 report" `Quick test_fig5_report_renders;
        Alcotest.test_case "fig6 shape" `Quick test_fig6_shape;
        Alcotest.test_case "fig7 point" `Quick test_fig7_point;
        Alcotest.test_case "fig7 droop" `Quick test_fig7_droop_at_high_loss;
        Alcotest.test_case "scenario rtt" `Quick test_scenario_rtt_estimate;
        Alcotest.test_case "scenario validation" `Quick
          test_scenario_flow_count_checked;
        Alcotest.test_case "ablation" `Quick test_ablation_runs;
        Alcotest.test_case "ack-loss shape" `Quick test_ack_loss_shape;
        Alcotest.test_case "sync shape" `Quick test_sync_shape;
        Alcotest.test_case "smooth shape" `Quick test_smooth_shape;
        Alcotest.test_case "fig7 delack constant" `Quick
          test_fig7_delack_model_constant;
        Alcotest.test_case "tracefile format" `Quick test_tracefile_format;
        Alcotest.test_case "queue occupancy" `Quick test_queue_occupancy_collected;
        Alcotest.test_case "sync queue cov" `Quick test_sync_queue_cov_positive;
        Alcotest.test_case "fig5 background mode" `Quick test_fig5_background_runs;
        Alcotest.test_case "table5 limited transmit" `Quick
          test_table5_limited_transmit_restores_case4;
        Alcotest.test_case "vegas decomposition" `Quick test_vegas_claim_shape;
        Alcotest.test_case "rtt fairness" `Quick test_rtt_fairness_shape;
        Alcotest.test_case "sensitivity ordering" `Quick test_sensitivity_ordering;
        Alcotest.test_case "modelcheck tolerance" `Quick
          test_modelcheck_relentless_tolerance;
      ] );
  ]
