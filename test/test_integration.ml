(* End-to-end integration tests over the full simulated network.

   The central invariant: whatever the variant and whatever the loss
   pattern, a finite transfer completes and the receiver ends with
   exactly the file, in order — TCP reliability on top of a lossy
   substrate. *)

let mss = 1000

let run_transfer ?(variant = Core.Variant.Newreno) ?(segments = 60)
    ?(forced_drops = []) ?(uniform_loss = 0.0) ?(ack_loss = 0.0)
    ?(delayed_ack = false) ?(duration = 120.0) ?(seed = 5L) () =
  let spec =
    Experiments.Scenario.make
      ~topology:(Experiments.Scenario.dumbbell (Net.Dumbbell.paper_config ~flows:1))
      ~flows:
        [
          {
            (Experiments.Scenario.flow variant) with
            Experiments.Scenario.source =
              Experiments.Scenario.File_bytes (segments * mss);
          };
        ]
      ~params:{ Tcp.Params.default with rwnd = 20 }
      ~seed ~duration ~forced_drops ~uniform_loss ~ack_loss ~delayed_ack ()
  in
  let t = Experiments.Scenario.run spec in
  (t, t.Experiments.Scenario.results.(0))

let check_complete ~segments (result : Experiments.Scenario.flow_result) =
  (match result.Experiments.Scenario.completion with
  | Some _ -> ()
  | None -> Alcotest.fail "transfer did not complete");
  Alcotest.(check int) "receiver has the whole file, in order" segments
    (Tcp.Receiver.next_expected result.Experiments.Scenario.receiver);
  Alcotest.(check int) "no stray buffered data" 0
    (Tcp.Receiver.buffered result.Experiments.Scenario.receiver)

let test_lossless_delivery () =
  List.iter
    (fun variant ->
      let _, result = run_transfer ~variant () in
      check_complete ~segments:60 result;
      let counters =
        result.Experiments.Scenario.agent.Tcp.Agent.base
          .Tcp.Sender_common.counters
      in
      Alcotest.(check int)
        (Core.Variant.name variant ^ " no retransmissions without loss")
        0 counters.Tcp.Counters.retransmits)
    Core.Variant.all

let test_burst_loss_delivery () =
  List.iter
    (fun variant ->
      List.iter
        (fun drops ->
          let rules =
            List.init drops (fun i ->
                { Net.Loss.flow = 0; seq = 33 + i; occurrence = 1 })
          in
          let _, result = run_transfer ~variant ~forced_drops:rules () in
          check_complete ~segments:60 result)
        [ 1; 3; 6 ])
    Core.Variant.all

let test_random_loss_delivery () =
  List.iter
    (fun variant ->
      let _, result =
        run_transfer ~variant ~uniform_loss:0.05 ~duration:200.0 ()
      in
      check_complete ~segments:60 result)
    Core.Variant.all

let test_retransmission_loss_recovered_by_timeout () =
  (* Drop segment 33 twice: the retransmission is lost too; only the
     RTO can repair it (paper §2: "RR also handles retransmission
     losses by using timeouts"). *)
  List.iter
    (fun variant ->
      let rules =
        [
          { Net.Loss.flow = 0; seq = 33; occurrence = 1 };
          { Net.Loss.flow = 0; seq = 33; occurrence = 2 };
        ]
      in
      let _, result = run_transfer ~variant ~forced_drops:rules () in
      check_complete ~segments:60 result)
    Core.Variant.all

let test_ack_loss_delivery () =
  (* Heavy reverse-path loss slows everyone down but never breaks
     reliability. *)
  List.iter
    (fun variant ->
      let _, result =
        run_transfer ~variant ~ack_loss:0.2 ~duration:300.0 ()
      in
      check_complete ~segments:60 result)
    Core.Variant.all

let test_delayed_ack_delivery () =
  List.iter
    (fun variant ->
      let _, result =
        run_transfer ~variant ~delayed_ack:true
          ~forced_drops:
            (List.init 3 (fun i ->
                 { Net.Loss.flow = 0; seq = 33 + i; occurrence = 1 }))
          ~duration:300.0 ()
      in
      check_complete ~segments:60 result)
    Core.Variant.all

let test_throughput_near_link_rate () =
  List.iter
    (fun variant ->
      let spec =
        Experiments.Scenario.make
          ~topology:(Experiments.Scenario.dumbbell (Net.Dumbbell.paper_config ~flows:1))
          ~flows:[ Experiments.Scenario.flow variant ]
          ~params:{ Tcp.Params.default with rwnd = 20 }
          ~seed:5L ()
      in
      let t = Experiments.Scenario.run spec in
      let bw =
        Stats.Metrics.effective_throughput_bps
          t.Experiments.Scenario.results.(0).Experiments.Scenario.trace ~mss
          ~t0:5.0 ~t1:30.0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s runs the link near capacity (%.0f bps)"
           (Core.Variant.name variant) bw)
        true
        (bw > 0.9 *. Sim.Units.mbps 0.8))
    Core.Variant.all

let test_two_flows_share () =
  let spec =
    Experiments.Scenario.make
      ~topology:
        (Experiments.Scenario.dumbbell
           {
             (Net.Dumbbell.paper_config ~flows:2) with
             Net.Dumbbell.gateway = Net.Dumbbell.Droptail { capacity = 25 };
           })
      ~flows:
        [
          Experiments.Scenario.flow Core.Variant.Rr;
          { (Experiments.Scenario.flow Core.Variant.Rr) with
            Experiments.Scenario.start = 0.3 };
        ]
      ~params:{ Tcp.Params.default with rwnd = 20 }
      ~seed:5L ~duration:60.0 ()
  in
  let t = Experiments.Scenario.run spec in
  let bw flow =
    Stats.Metrics.effective_throughput_bps
      t.Experiments.Scenario.results.(flow).Experiments.Scenario.trace ~mss
      ~t0:10.0 ~t1:60.0
  in
  let total = bw 0 +. bw 1 in
  Alcotest.(check bool)
    (Printf.sprintf "both flows get real shares (%.0f / %.0f)" (bw 0) (bw 1))
    true
    (bw 0 > 0.15 *. total && bw 1 > 0.15 *. total);
  Alcotest.(check bool) "link well used" true (total > 0.8 *. Sim.Units.mbps 0.8)

let test_rr_beats_newreno_on_burst () =
  (* The paper's headline, as an invariant: with a 6-loss burst, RR's
     goodput over the recovery window beats New-Reno's. *)
  let goodput variant =
    let rules =
      List.init 6 (fun i -> { Net.Loss.flow = 0; seq = 33 + i; occurrence = 1 })
    in
    let spec =
      Experiments.Scenario.make
        ~topology:(Experiments.Scenario.dumbbell (Net.Dumbbell.paper_config ~flows:1))
        ~flows:[ Experiments.Scenario.flow variant ]
        ~params:{ Tcp.Params.default with initial_ssthresh = 16.0; rwnd = 20 }
        ~seed:5L ~forced_drops:rules ()
    in
    let t = Experiments.Scenario.run spec in
    let t0 =
      match Experiments.Scenario.first_drop_time t ~flow:0 with
      | Some time -> time
      | None -> Alcotest.fail "no drop"
    in
    Stats.Metrics.effective_throughput_bps
      t.Experiments.Scenario.results.(0).Experiments.Scenario.trace ~mss ~t0
      ~t1:(t0 +. 3.0)
  in
  let rr = goodput Core.Variant.Rr in
  let newreno = goodput Core.Variant.Newreno in
  Alcotest.(check bool)
    (Printf.sprintf "rr %.0f > newreno %.0f" rr newreno)
    true (rr > newreno)

let test_rr_no_timeout_on_burst () =
  (* 6 losses in one window must be absorbed by one recovery episode,
     without a retransmission timeout. *)
  let rules =
    List.init 6 (fun i -> { Net.Loss.flow = 0; seq = 33 + i; occurrence = 1 })
  in
  let spec =
    Experiments.Scenario.make
      ~topology:(Experiments.Scenario.dumbbell (Net.Dumbbell.paper_config ~flows:1))
      ~flows:[ Experiments.Scenario.flow Core.Variant.Rr ]
      ~params:{ Tcp.Params.default with initial_ssthresh = 16.0; rwnd = 20 }
      ~seed:5L ~forced_drops:rules ()
  in
  let t = Experiments.Scenario.run spec in
  let counters =
    t.Experiments.Scenario.results.(0).Experiments.Scenario.agent
      .Tcp.Agent.base.Tcp.Sender_common.counters
  in
  Alcotest.(check int) "no timeouts" 0 counters.Tcp.Counters.timeouts;
  Alcotest.(check int) "one recovery" 1 counters.Tcp.Counters.fast_retransmits

let test_deterministic_replay () =
  (* Same seed => bit-identical behaviour, including through the RED
     gateway's randomness; different seed => different drop pattern. *)
  let run seed =
    let spec =
      Experiments.Scenario.make
        ~topology:
          (Experiments.Scenario.dumbbell
             {
               (Net.Dumbbell.paper_config ~flows:3) with
               Net.Dumbbell.gateway =
                 Net.Dumbbell.Red
                   { capacity = 25; params = Net.Red.paper_params };
             })
        ~flows:(List.init 3 (fun _ -> Experiments.Scenario.flow Core.Variant.Rr))
        ~params:{ Tcp.Params.default with rwnd = 20 }
        ~seed ~duration:10.0 ()
    in
    let t = Experiments.Scenario.run spec in
    ( t.Experiments.Scenario.drop_log,
      Stats.Series.to_list
        t.Experiments.Scenario.results.(0).Experiments.Scenario.trace
          .Stats.Flow_trace.una )
  in
  let drops_a, una_a = run 77L in
  let drops_b, una_b = run 77L in
  let drops_c, _ = run 78L in
  Alcotest.(check bool) "identical drop logs" true (drops_a = drops_b);
  (* The RED run drops data, not ACKs, and every data drop carries its
     real sequence number (no -1 sentinel in the typed log). *)
  Alcotest.(check bool) "data drops carry sequence numbers" true
    (drops_a <> []
    && List.for_all
         (fun { Experiments.Scenario.payload; _ } ->
           match payload with
           | Experiments.Scenario.Data { seq } -> seq >= 0
           | Experiments.Scenario.Ack -> false)
         drops_a);
  Alcotest.(check bool) "identical ack trajectories" true (una_a = una_b);
  Alcotest.(check bool) "seed changes the run" true (drops_a <> drops_c)

let test_limited_transmit_tiny_windows () =
  (* At a 3-segment window a single loss cannot produce 3 dup ACKs —
     unless limited transmit keeps the ACK clock alive. *)
  let run limited_transmit =
    let spec =
      Experiments.Scenario.make
        ~topology:(Experiments.Scenario.dumbbell (Net.Dumbbell.paper_config ~flows:1))
        ~flows:
          [
            {
              (Experiments.Scenario.flow Core.Variant.Rr) with
              Experiments.Scenario.source = Experiments.Scenario.File_bytes 60_000;
            };
          ]
        ~params:{ Tcp.Params.default with rwnd = 3; limited_transmit }
        ~seed:5L ~duration:200.0
        ~forced_drops:[ { Net.Loss.flow = 0; seq = 10; occurrence = 1 } ]
        ()
    in
    let t = Experiments.Scenario.run spec in
    let result = t.Experiments.Scenario.results.(0) in
    (match result.Experiments.Scenario.completion with
    | Some _ -> ()
    | None -> Alcotest.fail "transfer must complete");
    result.Experiments.Scenario.agent.Tcp.Agent.base.Tcp.Sender_common.counters
      .Tcp.Counters.timeouts
  in
  let without = run false in
  let with_lt = run true in
  Alcotest.(check bool)
    (Printf.sprintf "timeouts %d (plain) > %d (limited transmit)" without with_lt)
    true
    (without > with_lt)

(* Property: arbitrary drop patterns never break reliable delivery. *)
let drop_rules_gen =
  QCheck2.Gen.(
    list_size (int_range 0 8)
      (map2
         (fun seq occurrence -> { Net.Loss.flow = 0; seq; occurrence })
         (int_range 0 59) (int_range 1 2)))

let variant_gen = QCheck2.Gen.oneofl Core.Variant.all

let prop_reliable_delivery =
  QCheck2.Test.make ~name:"any variant delivers under any drop pattern"
    ~count:60
    QCheck2.Gen.(pair variant_gen drop_rules_gen)
    (fun (variant, rules) ->
      let _, result =
        run_transfer ~variant ~forced_drops:rules ~duration:300.0 ()
      in
      result.Experiments.Scenario.completion <> None
      && Tcp.Receiver.next_expected result.Experiments.Scenario.receiver = 60)

let suite =
  [
    ( "integration",
      [
        Alcotest.test_case "lossless delivery" `Quick test_lossless_delivery;
        Alcotest.test_case "burst loss delivery" `Quick test_burst_loss_delivery;
        Alcotest.test_case "random loss delivery" `Quick test_random_loss_delivery;
        Alcotest.test_case "retransmission loss" `Quick
          test_retransmission_loss_recovered_by_timeout;
        Alcotest.test_case "ack loss delivery" `Quick test_ack_loss_delivery;
        Alcotest.test_case "delayed ack delivery" `Quick test_delayed_ack_delivery;
        Alcotest.test_case "near link rate" `Quick test_throughput_near_link_rate;
        Alcotest.test_case "two flows share" `Quick test_two_flows_share;
        Alcotest.test_case "rr beats newreno on burst" `Quick
          test_rr_beats_newreno_on_burst;
        Alcotest.test_case "rr burst without timeout" `Quick
          test_rr_no_timeout_on_burst;
        Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
        Alcotest.test_case "limited transmit at tiny windows" `Quick
          test_limited_transmit_tiny_windows;
        QCheck_alcotest.to_alcotest ~long:false prop_reliable_delivery;
      ] );
  ]
