(* Dumbbell topology wiring: data reaches the right receiver, ACKs come
   back, drops are accounted per flow, loss wrappers interpose. *)

let data ~flow seq = Net.Packet.data ~uid:seq ~flow ~seq ~size_bytes:1000 ~born:0.0

let ack ~flow ackno =
  Net.Packet.ack ~uid:ackno ~flow ~ackno ~size_bytes:40 ~born:0.0 ()

let build ?(flows = 2) ?wrap_bottleneck () =
  let engine = Sim.Engine.create () in
  let topology =
    Net.Dumbbell.create ~engine
      ~config:(Net.Dumbbell.paper_config ~flows)
      ~rng:(Sim.Rng.create 1L) ?wrap_bottleneck ()
  in
  (engine, topology)

let test_data_path () =
  let engine, topology = build () in
  let got = ref [] in
  Net.Dumbbell.on_data topology ~flow:0 (fun p ->
      got := (0, Net.Packet.seq_exn p) :: !got);
  Net.Dumbbell.on_data topology ~flow:1 (fun p ->
      got := (1, Net.Packet.seq_exn p) :: !got);
  Net.Dumbbell.inject_data topology ~flow:0 (data ~flow:0 10);
  Net.Dumbbell.inject_data topology ~flow:1 (data ~flow:1 20);
  Sim.Engine.run engine;
  Alcotest.(check bool) "flow 0 delivered" true (List.mem (0, 10) !got);
  Alcotest.(check bool) "flow 1 delivered" true (List.mem (1, 20) !got);
  Alcotest.(check int) "nothing else" 2 (List.length !got)

let test_data_latency () =
  let engine, topology = build ~flows:1 () in
  let at = ref 0.0 in
  Net.Dumbbell.on_data topology ~flow:0 (fun _ -> at := Sim.Engine.now engine);
  Net.Dumbbell.inject_data topology ~flow:0 (data ~flow:0 1);
  Sim.Engine.run engine;
  (* access (0.8ms tx + 1ms) + bottleneck (10ms tx + 96ms) + exit access
     (0.8ms tx + 1ms) = 109.6 ms. *)
  Alcotest.(check (float 1e-6)) "one-way latency" 0.1096 !at

let test_ack_path () =
  let engine, topology = build () in
  let got = ref [] in
  Net.Dumbbell.on_ack topology ~flow:1 (fun p ->
      match Net.Packet.kind p with
      | Net.Packet.Ack { ackno; _ } -> got := ackno :: !got
      | Net.Packet.Data _ -> Alcotest.fail "data on ack path");
  Net.Dumbbell.on_ack topology ~flow:0 (fun _ -> Alcotest.fail "wrong flow");
  Net.Dumbbell.inject_ack topology ~flow:1 (ack ~flow:1 33);
  Sim.Engine.run engine;
  Alcotest.(check (list int)) "ack delivered" [ 33 ] !got

let test_drop_ledger () =
  let engine, topology = build ~flows:1 () in
  Net.Dumbbell.on_data topology ~flow:0 (fun _ -> ());
  (* Overflow the 8-packet bottleneck queue with a burst (access link is
     12.5x faster than the bottleneck, so the queue fills). *)
  for i = 1 to 60 do
    Net.Dumbbell.inject_data topology ~flow:0 (data ~flow:0 i)
  done;
  Sim.Engine.run engine;
  Alcotest.(check bool)
    (Printf.sprintf "drops %d recorded" (Net.Dumbbell.drops_of_flow topology 0))
    true
    (Net.Dumbbell.drops_of_flow topology 0 > 0);
  Alcotest.(check int) "total = flow" (Net.Dumbbell.drops_of_flow topology 0)
    (Net.Dumbbell.total_drops topology)

let test_wrap_bottleneck () =
  let seen = ref [] in
  let wrap next packet =
    seen := Net.Packet.seq_exn packet :: !seen;
    next packet
  in
  let engine, topology = build ~flows:1 ~wrap_bottleneck:wrap () in
  let delivered = ref 0 in
  Net.Dumbbell.on_data topology ~flow:0 (fun _ -> incr delivered);
  Net.Dumbbell.inject_data topology ~flow:0 (data ~flow:0 5);
  Sim.Engine.run engine;
  Alcotest.(check (list int)) "wrapper saw the packet" [ 5 ] !seen;
  Alcotest.(check int) "still delivered" 1 !delivered

let test_count_drop () =
  let _, topology = build ~flows:2 () in
  Net.Dumbbell.count_drop topology (data ~flow:1 1);
  Net.Dumbbell.count_drop topology (data ~flow:1 2);
  Alcotest.(check int) "ledger" 2 (Net.Dumbbell.drops_of_flow topology 1);
  Alcotest.(check int) "other flow untouched" 0 (Net.Dumbbell.drops_of_flow topology 0)

let test_side_delays () =
  let engine = Sim.Engine.create () in
  let topology =
    Net.Dumbbell.create ~engine
      ~config:(Net.Dumbbell.paper_config ~flows:2)
      ~rng:(Sim.Rng.create 1L)
      ~side_delays:[| 0.001; 0.051 |]
      ()
  in
  let arrivals = Array.make 2 0.0 in
  for flow = 0 to 1 do
    Net.Dumbbell.on_data topology ~flow (fun _ ->
        arrivals.(flow) <- Sim.Engine.now engine);
    Net.Dumbbell.inject_data topology ~flow (data ~flow 1)
  done;
  Sim.Engine.run engine;
  (* Two access hops per direction: the slow flow pays 2 * 50 ms more
     one-way. *)
  Alcotest.(check (float 1e-6)) "delay difference" 0.1
    (arrivals.(1) -. arrivals.(0))

let test_side_delays_validated () =
  let engine = Sim.Engine.create () in
  Alcotest.check_raises "length"
    (Invalid_argument "Dumbbell.create: side_delays length mismatch")
    (fun () ->
      ignore
        (Net.Dumbbell.create ~engine
           ~config:(Net.Dumbbell.paper_config ~flows:3)
           ~rng:(Sim.Rng.create 1L)
           ~side_delays:[| 0.001 |]
           ()))

let test_red_gateway_exposed () =
  let engine = Sim.Engine.create () in
  let config =
    {
      (Net.Dumbbell.paper_config ~flows:1) with
      gateway = Net.Dumbbell.Red { capacity = 25; params = Net.Red.paper_params };
    }
  in
  let topology =
    Net.Dumbbell.create ~engine ~config ~rng:(Sim.Rng.create 1L) ()
  in
  Alcotest.(check bool) "red stats available" true
    (Net.Dumbbell.red_stats topology <> None);
  Alcotest.(check string) "queue kind" "red"
    (Net.Dumbbell.bottleneck_queue topology).Net.Queue_disc.name

let suite =
  [
    ( "dumbbell",
      [
        Alcotest.test_case "data path" `Quick test_data_path;
        Alcotest.test_case "data latency" `Quick test_data_latency;
        Alcotest.test_case "ack path" `Quick test_ack_path;
        Alcotest.test_case "drop ledger" `Quick test_drop_ledger;
        Alcotest.test_case "bottleneck wrapper" `Quick test_wrap_bottleneck;
        Alcotest.test_case "count_drop" `Quick test_count_drop;
        Alcotest.test_case "side delays" `Quick test_side_delays;
        Alcotest.test_case "side delays validated" `Quick test_side_delays_validated;
        Alcotest.test_case "red gateway" `Quick test_red_gateway_exposed;
      ] );
  ]
