(* White-box tests of the Robust Recovery algorithm — each pins one of
   the paper's §2 state-machine claims. *)

open Tcp.Sender_common

let make_rr () =
  let handle_cell = ref None in
  let h =
    Harness.make (fun ~engine ~params ~flow ~emit () ->
        let agent, handle =
          Core.Rr.create_with_handle ~engine ~params ~flow ~emit ()
        in
        handle_cell := Some handle;
        agent)
  in
  match !handle_cell with
  | Some handle -> (h, handle)
  | None -> assert false

(* Window of 20 segments outstanding, then three dup ACKs. *)
let enter_recovery () =
  let h, handle = make_rr () in
  Harness.open_window h ~target:20;
  ignore (Harness.sent h);
  let b = Harness.base h in
  let cwnd_at_loss = (cwnd b) in
  Harness.dupacks h 3;
  (h, handle, b, cwnd_at_loss)

let view handle =
  match Core.Rr.inspect handle with
  | Some view -> view
  | None -> Alcotest.fail "expected to be in recovery"

let test_entry () =
  let h, handle, b, cwnd_at_loss = enter_recovery () in
  let v = view handle in
  Alcotest.(check bool) "retreat stage" true (v.Core.Rr.stage = Core.Rr.Retreat);
  Alcotest.(check int) "actnum zero in retreat" 0 v.Core.Rr.actnum;
  Alcotest.(check int) "exit point = maxseq at entry" b.maxseq v.Core.Rr.exit_point;
  (* cwnd is frozen, not used for control (§2.2: "cwnd remains
     unchanged until the end of congestion recovery"). *)
  Alcotest.(check (float 1e-9)) "cwnd frozen" cwnd_at_loss (cwnd b);
  Alcotest.(check bool) "ssthresh halved" true
    (Float.abs ((ssthresh b) -. Float.max (cwnd_at_loss /. 2.0) 2.0) < 1e-9);
  match Harness.sent h with
  | [ { seq; retx = true; _ } ] ->
    Alcotest.(check int) "first lost packet retransmitted" (b.una + 1) seq
  | _ -> Alcotest.fail "expected exactly the hole retransmission"

let test_retreat_halves_rate () =
  let h, handle, _, _ = enter_recovery () in
  ignore (Harness.sent h);
  (* 8 duplicate ACKs in retreat: one new segment per two. *)
  Harness.dupacks h 8;
  let fresh = List.filter (fun s -> not s.Harness.retx) (Harness.sent h) in
  Alcotest.(check int) "4 new segments for 8 dupacks" 4 (List.length fresh);
  Alcotest.(check int) "ndup counted" 8 (view handle).Core.Rr.ndup

let test_retreat_to_probe_seeds_actnum () =
  let h, handle, b, _ = enter_recovery () in
  ignore (Harness.sent h);
  Harness.dupacks h 8;
  ignore (Harness.sent h);
  (* First non-duplicate (partial) ACK ends retreat. *)
  Harness.deliver_ack h (b.una + 2);
  let v = view handle in
  Alcotest.(check bool) "probe stage" true (v.Core.Rr.stage = Core.Rr.Probe);
  Alcotest.(check int) "actnum = segments sent in retreat" 4 v.Core.Rr.actnum;
  Alcotest.(check int) "ndup reset at RTT boundary" 0 v.Core.Rr.ndup;
  match Harness.sent h with
  | [ { seq; retx = true; _ } ] ->
    Alcotest.(check int) "next hole retransmitted" (b.una + 1) seq
  | _ -> Alcotest.fail "expected the next hole"

let test_probe_sends_per_dupack () =
  let h, _, b, _ = enter_recovery () in
  ignore (Harness.sent h);
  Harness.dupacks h 8;
  Harness.deliver_ack h (b.una + 2);
  ignore (Harness.sent h);
  Harness.dupacks h 3;
  let fresh = List.filter (fun s -> not s.Harness.retx) (Harness.sent h) in
  Alcotest.(check int) "one new segment per dupack" 3 (List.length fresh)

let test_probe_clean_rtt_grows_actnum () =
  let h, handle, b, _ = enter_recovery () in
  ignore (Harness.sent h);
  Harness.dupacks h 8;
  Harness.deliver_ack h (b.una + 2);
  ignore (Harness.sent h);
  (* All 4 retreat segments arrive: ndup = actnum = 4: clean RTT. *)
  Harness.dupacks h 4;
  ignore (Harness.sent h);
  Harness.deliver_ack h (b.una + 2);
  let v = view handle in
  Alcotest.(check int) "actnum grew by one" 5 v.Core.Rr.actnum;
  (* The boundary sends the +1 growth segment and the hole rtx. *)
  let sends = Harness.sent h in
  let fresh = List.filter (fun s -> not s.Harness.retx) sends in
  let rtx = List.filter (fun s -> s.Harness.retx) sends in
  Alcotest.(check int) "one growth segment" 1 (List.length fresh);
  Alcotest.(check int) "one retransmission" 1 (List.length rtx)

let test_probe_further_loss_shrinks_and_extends () =
  let h, handle, b, _ = enter_recovery () in
  ignore (Harness.sent h);
  Harness.dupacks h 8;
  Harness.deliver_ack h (b.una + 2);
  ignore (Harness.sent h);
  let original_exit = (view handle).Core.Rr.exit_point in
  (* Only 2 of the 4 retreat segments made it: ndup < actnum. *)
  Harness.dupacks h 2;
  ignore (Harness.sent h);
  Harness.deliver_ack h (b.una + 2);
  let v = view handle in
  Alcotest.(check int) "actnum <- ndup (linear backoff)" 2 v.Core.Rr.actnum;
  Alcotest.(check bool) "exit point extended" true
    (v.Core.Rr.exit_point > original_exit);
  Alcotest.(check int) "exit now at snd_nxt" b.maxseq v.Core.Rr.exit_point;
  Alcotest.(check int) "losses recorded" 2 v.Core.Rr.further_losses

let test_exit_sets_cwnd_to_actnum () =
  let h, handle, b, _ = enter_recovery () in
  ignore (Harness.sent h);
  Harness.dupacks h 8;
  Harness.deliver_ack h (b.una + 2);
  Harness.dupacks h 4;
  Harness.deliver_ack h (b.una + 2);
  let v = view handle in
  let exit_point = v.Core.Rr.exit_point in
  let actnum = v.Core.Rr.actnum in
  ignore (Harness.sent h);
  (* The full ACK covering the exit point terminates recovery. *)
  Harness.deliver_ack h exit_point;
  Alcotest.(check bool) "out of recovery" true (Core.Rr.inspect handle = None);
  Alcotest.(check (float 1e-9)) "cwnd <- actnum" (float_of_int actnum) (cwnd b);
  Alcotest.(check int) "clean exit counted" 1 (Core.Rr.recoveries handle)

let test_exit_no_big_ack_burst () =
  let h, handle, b, _ = enter_recovery () in
  ignore (Harness.sent h);
  Harness.dupacks h 8;
  Harness.deliver_ack h (b.una + 2);
  Harness.dupacks h 4;
  Harness.deliver_ack h (b.una + 2);
  let exit_point = (view handle).Core.Rr.exit_point in
  ignore (Harness.sent h);
  Harness.deliver_ack h exit_point;
  (* The terminating big ACK releases at most one new segment (packet
     conservation; §2.2.3 "the big ACK problem has been eliminated"). *)
  let fresh = List.filter (fun s -> not s.Harness.retx) (Harness.sent h) in
  Alcotest.(check bool)
    (Printf.sprintf "%d segments on exit" (List.length fresh))
    true
    (List.length fresh <= 1)

let test_single_loss_exits_after_retreat () =
  let h, handle, b, _ = enter_recovery () in
  ignore (Harness.sent h);
  Harness.dupacks h 8;
  ignore (Harness.sent h);
  (* Full ACK straight away: the only loss was repaired in retreat. *)
  Harness.deliver_ack h b.maxseq;
  Alcotest.(check bool) "recovery over" true (Core.Rr.inspect handle = None);
  Alcotest.(check (float 1e-9)) "cwnd = retreat send count" 4.0 (cwnd b)

let test_timeout_clears_recovery () =
  let h, handle, b, _ = enter_recovery () in
  Harness.advance h ~by:30.0;
  Alcotest.(check bool) "recovery cleared" true (Core.Rr.inspect handle = None);
  Alcotest.(check bool) "timeout counted" true
    (b.counters.Tcp.Counters.timeouts >= 1);
  Alcotest.(check (float 1e-9)) "slow start restart" 1.0 (cwnd b)

let test_ack_loss_tolerance () =
  (* Lost dup ACKs make ndup undercount: RR treats it as further loss
     and only shrinks linearly — it must not crash or stall. *)
  let h, handle, b, _ = enter_recovery () in
  ignore (Harness.sent h);
  Harness.dupacks h 8;
  Harness.deliver_ack h (b.una + 2);
  ignore (Harness.sent h);
  (* Deliver only 3 of the 4 expected dupacks (one ACK lost). *)
  Harness.dupacks h 3;
  Harness.deliver_ack h (b.una + 2);
  let v = view handle in
  Alcotest.(check int) "linear shrink only" 3 v.Core.Rr.actnum

let test_no_recovery_without_outstanding () =
  let h, handle = make_rr () in
  Harness.start ~segments:1 h;
  ignore (Harness.sent h);
  Harness.deliver_ack h 0;
  (* Stray dupacks with nothing outstanding are ignored. *)
  Harness.dupacks h 5;
  Alcotest.(check bool) "no recovery" true (Core.Rr.inspect handle = None)

let test_ablated_retreat_per_dupack () =
  let h =
    Harness.make (fun ~engine ~params ~flow ~emit () ->
        Core.Rr.create_ablated ~engine ~params ~flow ~emit
          ~ablation:{ Core.Rr.paper_design with retreat_per_dupack = true }
          ())
  in
  Harness.open_window h ~target:20;
  ignore (Harness.sent h);
  Harness.dupacks h 3;
  ignore (Harness.sent h);
  Harness.dupacks h 8;
  let fresh = List.filter (fun s -> not s.Harness.retx) (Harness.sent h) in
  Alcotest.(check int) "right-edge: 8 new for 8 dupacks" 8 (List.length fresh)

let test_rr_with_limited_transmit () =
  (* RFC 3042 composes with RR: the first two dupacks emit new data,
     the third enters retreat as usual. *)
  let handle_cell = ref None in
  let h =
    Harness.make
      ~params:{ Harness.params with Tcp.Params.limited_transmit = true }
      (fun ~engine ~params ~flow ~emit () ->
        let agent, handle =
          Core.Rr.create_with_handle ~engine ~params ~flow ~emit ()
        in
        handle_cell := Some handle;
        agent)
  in
  let handle = Option.get !handle_cell in
  Harness.open_window h ~target:10;
  ignore (Harness.sent h);
  Harness.dupack h;
  Harness.dupack h;
  let fresh = List.filter (fun s -> not s.Harness.retx) (Harness.sent h) in
  Alcotest.(check int) "two limited-transmit segments" 2 (List.length fresh);
  Alcotest.(check bool) "not yet recovering" true (Core.Rr.inspect handle = None);
  Harness.dupack h;
  Alcotest.(check bool) "third dupack enters retreat" true
    (match Core.Rr.inspect handle with
    | Some v -> v.Core.Rr.stage = Core.Rr.Retreat
    | None -> false)

let test_rr_second_burst_after_recovery () =
  (* A fresh loss burst after a clean exit starts a second, independent
     episode. *)
  let h, handle = make_rr () in
  Harness.open_window h ~target:20;
  ignore (Harness.sent h);
  let b = Harness.base h in
  Harness.dupacks h 3;
  ignore (Harness.sent h);
  Harness.dupacks h 8;
  ignore (Harness.sent h);
  Harness.deliver_ack h b.maxseq;
  Alcotest.(check int) "first episode done" 1 (Core.Rr.recoveries handle);
  (* Refill the pipe and lose again. *)
  for _ = 1 to 10 do
    Harness.deliver_ack h (b.una + 1);
    ignore (Harness.sent h)
  done;
  ignore (Harness.sent h);
  Harness.dupacks h 3;
  Alcotest.(check bool) "second episode entered" true
    (Core.Rr.inspect handle <> None)

(* Model-based robustness: drive an RR sender with arbitrary plausible
   ACK scripts (cumulative advances, duplicates, time passing) and check
   the state invariants after every step. *)
type script_op = Advance of int | Dup | Pass of float

let op_gen =
  QCheck2.Gen.(
    frequency
      [
        (3, map (fun n -> Advance n) (int_range 1 4));
        (5, return Dup);
        (2, map (fun dt -> Pass dt) (float_range 0.01 0.6));
      ])

let prop_invariants_under_any_script =
  QCheck2.Test.make ~name:"rr invariants hold under any ack script" ~count:300
    QCheck2.Gen.(list_size (int_range 1 80) op_gen)
    (fun ops ->
      let h, handle = make_rr () in
      Harness.open_window h ~target:20;
      let b = Harness.base h in
      let ok = ref true in
      let check_invariants () =
        let recovery_ok =
          match Core.Rr.inspect handle with
          | Some v ->
            v.Core.Rr.actnum >= 0 && v.Core.Rr.ndup >= 0
            && v.Core.Rr.exit_point >= b.una
          | None -> true
        in
        if
          not
            ((cwnd b) >= 1.0 && (ssthresh b) >= 2.0
            && b.t_seqno >= b.una + 1
            && b.una <= b.maxseq && recovery_ok)
        then ok := false
      in
      List.iter
        (fun op ->
          (match op with
          | Advance n ->
            let target = min (b.una + n) b.maxseq in
            if target > b.una then Harness.deliver_ack h target
          | Dup -> if outstanding b > 0 then Harness.dupack h
          | Pass dt -> Harness.advance h ~by:dt);
          check_invariants ())
        ops;
      !ok)

let suite =
  [
    ( "rr",
      [
        Alcotest.test_case "entry" `Quick test_entry;
        Alcotest.test_case "retreat halves rate" `Quick test_retreat_halves_rate;
        Alcotest.test_case "retreat->probe actnum seed" `Quick
          test_retreat_to_probe_seeds_actnum;
        Alcotest.test_case "probe per-dupack send" `Quick test_probe_sends_per_dupack;
        Alcotest.test_case "probe clean RTT growth" `Quick
          test_probe_clean_rtt_grows_actnum;
        Alcotest.test_case "further loss shrink+extend" `Quick
          test_probe_further_loss_shrinks_and_extends;
        Alcotest.test_case "exit cwnd = actnum" `Quick test_exit_sets_cwnd_to_actnum;
        Alcotest.test_case "no big-ack burst" `Quick test_exit_no_big_ack_burst;
        Alcotest.test_case "single loss exit" `Quick test_single_loss_exits_after_retreat;
        Alcotest.test_case "timeout clears recovery" `Quick test_timeout_clears_recovery;
        Alcotest.test_case "ack-loss tolerance" `Quick test_ack_loss_tolerance;
        Alcotest.test_case "idle dupacks ignored" `Quick
          test_no_recovery_without_outstanding;
        Alcotest.test_case "ablation: right-edge retreat" `Quick
          test_ablated_retreat_per_dupack;
        Alcotest.test_case "limited transmit composes" `Quick
          test_rr_with_limited_transmit;
        Alcotest.test_case "second burst, second episode" `Quick
          test_rr_second_burst_after_recovery;
        QCheck_alcotest.to_alcotest prop_invariants_under_any_script;
      ] );
  ]
