(* Two-way traffic tests: direction wiring and the ACK-compression
   shape (paper reference [22]). *)

let test_backward_flow_delivers () =
  let t =
    Experiments.Scenario.run
      (Experiments.Scenario.make
         ~topology:(Experiments.Scenario.dumbbell (Net.Dumbbell.paper_config ~flows:1))
         ~flows:
           [
             {
               (Experiments.Scenario.flow ~direction:Net.Dumbbell.Backward
                  Core.Variant.Rr) with
               Experiments.Scenario.source =
                 Experiments.Scenario.File_bytes 40_000;
             };
           ]
         ~params:{ Tcp.Params.default with rwnd = 20 }
         ~duration:60.0 ())
  in
  let result = t.Experiments.Scenario.results.(0) in
  Alcotest.(check bool) "backward transfer completes" true
    (result.Experiments.Scenario.completion <> None);
  Alcotest.(check int) "whole file received" 40
    (Tcp.Receiver.next_expected result.Experiments.Scenario.receiver)

let test_directions_validated () =
  let engine = Sim.Engine.create () in
  Alcotest.check_raises "length"
    (Invalid_argument "Dumbbell.create: directions length mismatch")
    (fun () ->
      ignore
        (Net.Dumbbell.create ~engine
           ~config:(Net.Dumbbell.paper_config ~flows:2)
           ~rng:(Sim.Rng.create 1L)
           ~directions:[| Net.Dumbbell.Forward |]
           ()))

let test_mixed_directions_share_trunks () =
  (* One forward and one backward flow: both must make real progress —
     each direction's data rides a different trunk. *)
  let t =
    Experiments.Scenario.run
      (Experiments.Scenario.make
         ~topology:
           (Experiments.Scenario.dumbbell
              {
                (Net.Dumbbell.paper_config ~flows:2) with
                Net.Dumbbell.reverse_capacity = 8;
              })
         ~flows:
           [
             Experiments.Scenario.flow Core.Variant.Rr;
             Experiments.Scenario.flow ~direction:Net.Dumbbell.Backward
               ~start:0.3 Core.Variant.Rr;
           ]
         ~params:{ Tcp.Params.default with rwnd = 20 }
         ~duration:30.0 ())
  in
  let goodput flow =
    Stats.Metrics.effective_throughput_bps
      t.Experiments.Scenario.results.(flow).Experiments.Scenario.trace
      ~mss:1000 ~t0:5.0 ~t1:30.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "forward %.0f and backward %.0f both flow" (goodput 0)
       (goodput 1))
    true
    (goodput 0 > 100_000.0 && goodput 1 > 100_000.0)

let test_ack_compression_shape () =
  let outcome =
    Experiments.Two_way.run ~variants:[ Core.Variant.Reno ] ~duration:25.0 ()
  in
  match outcome.Experiments.Two_way.rows with
  | [ row ] ->
    Alcotest.(check bool)
      (Printf.sprintf "two-way %.0f < one-way %.0f"
         row.Experiments.Two_way.two_way_goodput_bps
         row.Experiments.Two_way.one_way_goodput_bps)
      true
      (row.Experiments.Two_way.two_way_goodput_bps
      < row.Experiments.Two_way.one_way_goodput_bps);
    Alcotest.(check bool) "acks were lost" true
      (row.Experiments.Two_way.ack_drops > 0)
  | _ -> Alcotest.fail "one row expected"

let suite =
  [
    ( "two_way",
      [
        Alcotest.test_case "backward flow delivers" `Quick
          test_backward_flow_delivers;
        Alcotest.test_case "directions validated" `Quick test_directions_validated;
        Alcotest.test_case "mixed directions" `Quick
          test_mixed_directions_share_trunks;
        Alcotest.test_case "ack compression" `Quick test_ack_compression_shape;
      ] );
  ]
