(* Packet constructors and accessors. *)

let test_data () =
  let p = Net.Packet.data ~uid:1 ~flow:3 ~seq:42 ~size_bytes:1000 ~born:0.5 in
  Alcotest.(check bool) "is_data" true (Net.Packet.is_data p);
  Alcotest.(check int) "seq" 42 (Net.Packet.seq_exn p);
  Alcotest.(check int) "flow" 3 p.Net.Packet.flow;
  Alcotest.(check int) "size" 1000 p.Net.Packet.size_bytes

let test_ack () =
  let p =
    Net.Packet.ack ~uid:2 ~flow:1 ~ackno:7 ~sack:[ (9, 12) ] ~size_bytes:40
      ~born:1.0 ()
  in
  Alcotest.(check bool) "not data" false (Net.Packet.is_data p);
  (match Net.Packet.kind p with
  | Net.Packet.Ack { ackno; sack } ->
    Alcotest.(check int) "ackno" 7 ackno;
    Alcotest.(check (list (pair int int))) "sack" [ (9, 12) ] sack
  | Net.Packet.Data _ -> Alcotest.fail "kind");
  Alcotest.check_raises "seq_exn on ack"
    (Invalid_argument "Packet.seq_exn: ACK packet") (fun () ->
      ignore (Net.Packet.seq_exn p : int))

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let test_pp () =
  let data = Net.Packet.data ~uid:1 ~flow:0 ~seq:5 ~size_bytes:1000 ~born:0.0 in
  let ack = Net.Packet.ack ~uid:2 ~flow:0 ~ackno:4 ~size_bytes:40 ~born:0.0 () in
  Alcotest.(check bool) "data mentions seq" true
    (contains (Format.asprintf "%a" Net.Packet.pp data) "seq=5");
  Alcotest.(check bool) "ack mentions ackno" true
    (contains (Format.asprintf "%a" Net.Packet.pp ack) "ackno=4")

let suite =
  [
    ( "packet",
      [
        Alcotest.test_case "data" `Quick test_data;
        Alcotest.test_case "ack" `Quick test_ack;
        Alcotest.test_case "pp" `Quick test_pp;
      ] );
  ]
