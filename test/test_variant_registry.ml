(* Variant registry: names, parsing, construction. *)

let test_names_roundtrip () =
  List.iter
    (fun v ->
      match Core.Variant.of_string (Core.Variant.name v) with
      | Ok parsed -> Alcotest.(check bool) "roundtrip" true (parsed = v)
      | Error e -> Alcotest.fail e)
    Core.Variant.all

let test_aliases () =
  Alcotest.(check bool) "new-reno" true
    (Core.Variant.of_string "New-Reno" = Ok Core.Variant.Newreno);
  Alcotest.(check bool) "robust" true
    (Core.Variant.of_string "robust-recovery" = Ok Core.Variant.Rr);
  Alcotest.(check bool) "case" true
    (Core.Variant.of_string "SACK" = Ok Core.Variant.Sack);
  Alcotest.(check bool) "relative-rate-reduction" true
    (Core.Variant.of_string "relative-rate-reduction" = Ok Core.Variant.Rrr)

let test_unknown () =
  match Core.Variant.of_string "cubic" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cubic is from the future"

let test_construction () =
  let engine = Sim.Engine.create () in
  List.iter
    (fun v ->
      let agent =
        Core.Variant.create v ~engine ~params:Tcp.Params.default ~flow:0
          ~emit:(fun _ -> ())
          ()
      in
      Alcotest.(check string) "name matches" (Core.Variant.name v)
        agent.Tcp.Agent.name;
      Alcotest.(check bool) "only sack-family wants sack" true
        (agent.Tcp.Agent.wants_sack
        = (v = Core.Variant.Sack || v = Core.Variant.Fack)))
    Core.Variant.all

let suite =
  [
    ( "variant",
      [
        Alcotest.test_case "names roundtrip" `Quick test_names_roundtrip;
        Alcotest.test_case "aliases" `Quick test_aliases;
        Alcotest.test_case "unknown" `Quick test_unknown;
        Alcotest.test_case "construction" `Quick test_construction;
      ] );
  ]
