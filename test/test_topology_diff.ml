(* Differential determinism across dumbbell backends: every registered
   experiment must produce a byte-identical report whether the dumbbell
   is realized through the general Topology graph or the legacy
   hand-wired closures. This is the contract that let Net.Dumbbell
   become a thin wrapper — any divergence in queue naming, RNG split
   order, link realization order or handler wiring shows up here as a
   report diff. *)

let with_backend backend f =
  let saved = Net.Dumbbell.default_backend () in
  Net.Dumbbell.set_default_backend backend;
  Fun.protect ~finally:(fun () -> Net.Dumbbell.set_default_backend saved) f

let test_registry_reports_identical () =
  List.iter
    (fun e ->
      let run backend =
        with_backend backend (fun () -> e.Experiments.Registry.run ~seed:7L)
      in
      let graph = run Net.Dumbbell.Graph in
      let legacy = run Net.Dumbbell.Legacy_closures in
      Alcotest.(check string)
        (e.Experiments.Registry.name ^ " report byte-identical")
        graph legacy)
    Experiments.Registry.all

(* The same guarantee for the raw event stream of a traced scenario:
   the JSONL traces (every send, ACK, recovery transition and queue
   event, timestamped) must match line for line across backends. *)
let test_traced_scenario_identical () =
  let trace backend =
    with_backend backend (fun () ->
        let path = Filename.temp_file "rr-topo" ".jsonl" in
        let out = open_out path in
        let spec =
          Experiments.Scenario.make
            ~topology:
              (Experiments.Scenario.dumbbell
                 (Net.Dumbbell.paper_config ~flows:2))
            ~flows:
              [
                Experiments.Scenario.flow Core.Variant.Rr;
                Experiments.Scenario.flow Core.Variant.Sack;
              ]
            ~params:{ Tcp.Params.default with rwnd = 20 }
            ~seed:11L ~duration:10.0 ~uniform_loss:0.02 ~ack_loss:0.01
            ~trace_out:out ()
        in
        ignore (Experiments.Scenario.run spec : Experiments.Scenario.t);
        close_out out;
        let ic = open_in_bin path in
        let contents =
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        Sys.remove path;
        contents)
  in
  let graph = trace Net.Dumbbell.Graph in
  let legacy = trace Net.Dumbbell.Legacy_closures in
  Alcotest.(check bool) "trace non-trivial" true (String.length graph > 10_000);
  Alcotest.(check string) "event stream byte-identical" graph legacy

let suite =
  [
    ( "topology-diff",
      [
        Alcotest.test_case "registry reports byte-identical" `Slow
          test_registry_reports_identical;
        Alcotest.test_case "traced scenario byte-identical" `Quick
          test_traced_scenario_identical;
      ] );
  ]
