(* RNG tests: reproducibility, stream independence, output ranges and
   coarse distribution sanity. *)

let test_determinism () =
  let a = Sim.Rng.create 42L in
  let b = Sim.Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check bool) "same stream" true (Sim.Rng.bits64 a = Sim.Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Sim.Rng.create 1L in
  let b = Sim.Rng.create 2L in
  let differs = ref false in
  for _ = 1 to 10 do
    if Sim.Rng.bits64 a <> Sim.Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_split_independence () =
  let parent = Sim.Rng.create 7L in
  let child = Sim.Rng.split parent in
  let child_values = List.init 50 (fun _ -> Sim.Rng.bits64 child) in
  let parent_values = List.init 50 (fun _ -> Sim.Rng.bits64 parent) in
  Alcotest.(check bool)
    "child stream is not the parent stream" true
    (child_values <> parent_values)

let test_float_range () =
  let rng = Sim.Rng.create 3L in
  for _ = 1 to 1000 do
    let x = Sim.Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_float_range_bounds () =
  let rng = Sim.Rng.create 3L in
  for _ = 1 to 1000 do
    let x = Sim.Rng.float_range rng ~lo:(-5.0) ~hi:5.0 in
    Alcotest.(check bool) "in [lo,hi)" true (x >= -5.0 && x < 5.0)
  done

let test_int_range () =
  let rng = Sim.Rng.create 11L in
  let seen = Array.make 6 0 in
  for _ = 1 to 6000 do
    let k = Sim.Rng.int rng 6 in
    Alcotest.(check bool) "in [0,6)" true (k >= 0 && k < 6);
    seen.(k) <- seen.(k) + 1
  done;
  Array.iteri
    (fun i count ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d roughly uniform" i)
        true
        (count > 700 && count < 1300))
    seen

let test_bernoulli_edges () =
  let rng = Sim.Rng.create 5L in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Sim.Rng.bernoulli rng 0.0);
    Alcotest.(check bool) "p=1 always" true (Sim.Rng.bernoulli rng 1.0)
  done

let test_bernoulli_rate () =
  let rng = Sim.Rng.create 13L in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Sim.Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.3f near 0.3" rate)
    true
    (rate > 0.27 && rate < 0.33)

let test_exponential () =
  let rng = Sim.Rng.create 17L in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let x = Sim.Rng.exponential rng ~mean:2.0 in
    Alcotest.(check bool) "positive" true (x >= 0.0);
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f near 2.0" mean)
    true
    (mean > 1.85 && mean < 2.15)

let prop_int_in_range =
  QCheck2.Test.make ~name:"Rng.int stays in range"
    QCheck2.Gen.(pair (int_range 1 1000) int)
    (fun (n, seed) ->
      let rng = Sim.Rng.create (Int64.of_int seed) in
      let k = Sim.Rng.int rng n in
      k >= 0 && k < n)

let suite =
  [
    ( "rng",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
        Alcotest.test_case "split independence" `Quick test_split_independence;
        Alcotest.test_case "float range" `Quick test_float_range;
        Alcotest.test_case "float_range bounds" `Quick test_float_range_bounds;
        Alcotest.test_case "int uniformity" `Quick test_int_range;
        Alcotest.test_case "bernoulli edges" `Quick test_bernoulli_edges;
        Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
        Alcotest.test_case "exponential mean" `Quick test_exponential;
        QCheck_alcotest.to_alcotest prop_int_in_range;
      ] );
  ]
