(* Loss-injection wrappers: uniform random loss and deterministic drop
   lists. *)

let data ?(flow = 0) seq =
  Net.Packet.data ~uid:seq ~flow ~seq ~size_bytes:1000 ~born:0.0

let ack ackno = Net.Packet.ack ~uid:ackno ~flow:0 ~ackno ~size_bytes:40 ~born:0.0 ()

let test_uniform_rate () =
  let rng = Sim.Rng.create 21L in
  let passed = ref 0 and dropped = ref 0 in
  let next = Net.Loss.uniform ~rng ~rate:0.2 ~on_drop:(fun _ -> incr dropped)
      (fun _ -> incr passed) in
  for i = 1 to 10_000 do
    next (data i)
  done;
  let rate = float_of_int !dropped /. 10_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.3f near 0.2" rate)
    true
    (rate > 0.17 && rate < 0.23);
  Alcotest.(check int) "conservation" 10_000 (!passed + !dropped)

let test_uniform_zero_and_one () =
  let rng = Sim.Rng.create 5L in
  let count = ref 0 in
  let all_pass = Net.Loss.uniform ~rng ~rate:0.0 (fun _ -> incr count) in
  for i = 1 to 100 do
    all_pass (data i)
  done;
  Alcotest.(check int) "rate 0 passes all" 100 !count;
  let none = Net.Loss.uniform ~rng ~rate:1.0 (fun _ -> Alcotest.fail "leak") in
  for i = 1 to 100 do
    none (data i)
  done

let test_uniform_data_only () =
  let rng = Sim.Rng.create 5L in
  let acks = ref 0 in
  let next = Net.Loss.uniform ~rng ~rate:1.0 (fun _ -> incr acks) in
  for i = 1 to 50 do
    next (ack i)
  done;
  Alcotest.(check int) "acks immune by default" 50 !acks;
  let dropped = ref 0 in
  let next =
    Net.Loss.uniform ~rng ~rate:1.0 ~data_only:false
      ~on_drop:(fun _ -> incr dropped)
      (fun _ -> Alcotest.fail "leak")
  in
  next (ack 1);
  Alcotest.(check int) "acks droppable when asked" 1 !dropped

let test_uniform_invalid_rate () =
  let rng = Sim.Rng.create 5L in
  Alcotest.check_raises "rate" (Invalid_argument "Loss.uniform: bad rate")
    (fun () -> ignore (Net.Loss.uniform ~rng ~rate:1.5 (fun _ -> ()) (data 1)))

let test_drop_list_first_occurrence () =
  let passed = ref [] and dropped = ref [] in
  let next =
    Net.Loss.drop_list
      ~rules:[ { Net.Loss.flow = 0; seq = 5; occurrence = 1 } ]
      ~on_drop:(fun p -> dropped := Net.Packet.seq_exn p :: !dropped)
      (fun p -> passed := Net.Packet.seq_exn p :: !passed)
  in
  List.iter next [ data 4; data 5; data 6; data 5 (* retransmission *) ];
  Alcotest.(check (list int)) "dropped first tx only" [ 5 ] !dropped;
  Alcotest.(check (list int)) "retx passes" [ 5; 6; 4 ] !passed

let test_drop_list_nth_occurrence () =
  let dropped = ref 0 and passed = ref 0 in
  let next =
    Net.Loss.drop_list
      ~rules:[ { Net.Loss.flow = 0; seq = 9; occurrence = 2 } ]
      ~on_drop:(fun _ -> incr dropped)
      (fun _ -> incr passed)
  in
  next (data 9);
  Alcotest.(check int) "first passes" 1 !passed;
  next (data 9);
  Alcotest.(check int) "second dropped" 1 !dropped;
  next (data 9);
  Alcotest.(check int) "third passes" 2 !passed

let test_drop_list_flow_scoped () =
  let dropped = ref [] in
  let next =
    Net.Loss.drop_list
      ~rules:[ { Net.Loss.flow = 1; seq = 3; occurrence = 1 } ]
      ~on_drop:(fun p -> dropped := p.Net.Packet.flow :: !dropped)
      (fun _ -> ())
  in
  next (data ~flow:0 3);
  next (data ~flow:1 3);
  Alcotest.(check (list int)) "only flow 1" [ 1 ] !dropped

let test_drop_list_ignores_acks () =
  let passed = ref 0 in
  let next =
    Net.Loss.drop_list
      ~rules:[ { Net.Loss.flow = 0; seq = 1; occurrence = 1 } ]
      (fun _ -> incr passed)
  in
  next (ack 1);
  Alcotest.(check int) "ack passes" 1 !passed

let suite =
  [
    ( "loss",
      [
        Alcotest.test_case "uniform rate" `Quick test_uniform_rate;
        Alcotest.test_case "uniform edges" `Quick test_uniform_zero_and_one;
        Alcotest.test_case "uniform data-only" `Quick test_uniform_data_only;
        Alcotest.test_case "uniform invalid" `Quick test_uniform_invalid_rate;
        Alcotest.test_case "drop list first tx" `Quick test_drop_list_first_occurrence;
        Alcotest.test_case "drop list nth tx" `Quick test_drop_list_nth_occurrence;
        Alcotest.test_case "drop list flow scope" `Quick test_drop_list_flow_scoped;
        Alcotest.test_case "drop list ignores acks" `Quick test_drop_list_ignores_acks;
      ] );
  ]
