(* Fault-injection subsystem tests, in three layers:

   - schedules: the pure timelines (explicit, periodic, random) and
     their validation;
   - mechanisms: flap drop/hold semantics against a live link, the
     reorder hold-back bound, and the FIFO guarantee of jitter — all
     deterministic under a fixed RNG;
   - properties: any fault spec the generator produces leaves the
     runtime auditor clean, and a faulted scenario's JSONL trace is
     byte-identical across seeds and event schedulers. *)

let packet ?(flow = 0) ?(size = 1000) seq =
  Net.Packet.data ~uid:seq ~flow ~seq ~size_bytes:size ~born:0.0

let times schedule =
  List.map
    (fun tr -> tr.Faults.Schedule.at)
    (Faults.Schedule.transitions schedule)

(* -- schedules -- *)

let test_of_flaps () =
  let s = Faults.Schedule.of_flaps [ (2.0, 2.5); (8.0, 9.0) ] in
  Alcotest.(check (list (float 1e-9))) "transition times" [ 2.0; 2.5; 8.0; 9.0 ]
    (times s);
  Alcotest.(check (list bool)) "down/up alternation" [ false; true; false; true ]
    (List.map (fun tr -> tr.Faults.Schedule.up) (Faults.Schedule.transitions s));
  Alcotest.(check bool) "empty" true (Faults.Schedule.is_empty (Faults.Schedule.of_flaps []));
  Alcotest.check_raises "up before down"
    (Invalid_argument "Schedule.of_flaps: up_at <= down_at") (fun () ->
      ignore (Faults.Schedule.of_flaps [ (2.0, 2.0) ]));
  Alcotest.check_raises "overlapping outages"
    (Invalid_argument "Schedule.of_flaps: flaps not strictly increasing")
    (fun () -> ignore (Faults.Schedule.of_flaps [ (2.0, 3.0); (2.5, 4.0) ]));
  Alcotest.check_raises "negative time"
    (Invalid_argument "Schedule.of_flaps: negative time") (fun () ->
      ignore (Faults.Schedule.of_flaps [ (-1.0, 1.0) ]))

let test_periodic () =
  let s = Faults.Schedule.periodic ~period:5.0 ~down_for:0.3 ~until:12.0 () in
  Alcotest.(check (list (float 1e-9))) "handoff every 5 s" [ 5.0; 5.3; 10.0; 10.3 ]
    (times s);
  (* A restore falling past [until] is still emitted, clamped to
     [until] so it fires within a horizon-bounded run: the link never
     ends a schedule stuck down. *)
  let s = Faults.Schedule.periodic ~period:5.0 ~down_for:2.0 ~until:11.5 () in
  Alcotest.(check (list (float 1e-9))) "straddling restore clamped to until"
    [ 5.0; 7.0; 10.0; 11.5 ] (times s);
  Alcotest.check_raises "down_for >= period"
    (Invalid_argument "Schedule.periodic: need 0 < down_for < period")
    (fun () ->
      ignore (Faults.Schedule.periodic ~period:1.0 ~down_for:1.0 ~until:5.0 ()))

(* Regression for the truncation edge: with an outage straddling the
   schedule horizon, a link flapped under the schedule and run exactly
   to that horizon must end the run administratively up — the clamped
   restore is the run's final event. Same shape for [random]. *)
let test_truncated_schedule_restores_link () =
  let check_restored name schedule ~until =
    let engine = Sim.Engine.create () in
    let injector = Faults.Injector.create ~engine () in
    let link =
      Net.Link.create ~engine ~bandwidth_bps:(Sim.Units.mbps 0.8) ~delay:0.001
        ~queue:(Net.Droptail.create ~capacity:8 ())
        ~dst:ignore ()
    in
    Faults.Injector.flap_link injector ~name ~policy:`Hold_queued link schedule;
    Sim.Engine.run_until engine ~time:until;
    Alcotest.(check bool) (name ^ ": link up at horizon") true
      (Net.Link.is_up link)
  in
  (* Periodic: down at 10, down_for 2 straddles until = 11.5. *)
  check_restored "periodic"
    (Faults.Schedule.periodic ~period:5.0 ~down_for:2.0 ~until:11.5 ())
    ~until:11.5;
  (* Random: long mean_down forces the first outage to straddle. *)
  let rng = Sim.Rng.create 7L in
  check_restored "random"
    (Faults.Schedule.random ~rng ~mean_up:1.0 ~mean_down:1000.0 ~until:10.0 ())
    ~until:10.0

let test_random_schedule () =
  let build seed =
    Faults.Schedule.random ~rng:(Sim.Rng.create seed) ~mean_up:3.0
      ~mean_down:0.5 ~until:60.0 ()
  in
  let a = Faults.Schedule.transitions (build 7L) in
  Alcotest.(check bool) "non-trivial" true (List.length a >= 4);
  Alcotest.(check bool) "equal seeds, equal schedules" true
    (a = Faults.Schedule.transitions (build 7L));
  Alcotest.(check bool) "distinct seeds differ" true
    (a <> Faults.Schedule.transitions (build 8L));
  let rec alternating expected_up = function
    | [] -> true
    | tr :: rest ->
      tr.Faults.Schedule.up = expected_up && alternating (not expected_up) rest
  in
  Alcotest.(check bool) "starts down, alternates" true (alternating false a);
  let ts = List.map (fun tr -> tr.Faults.Schedule.at) a in
  Alcotest.(check bool) "strictly increasing" true
    (List.for_all2 (fun x y -> x < y) (List.filteri (fun i _ -> i < List.length ts - 1) ts)
       (List.tl ts))

(* -- mechanisms -- *)

(* 0.8 Mbps and 1000-byte packets: 10 ms serialization. Five packets
   sent at t=0; the link goes down at 15 ms, when packet 1 has been
   delivered, packet 2 is on the wire, and 3..5 sit in the queue. *)
let flap_fixture ~policy =
  let engine = Sim.Engine.create () in
  let injector = Faults.Injector.create ~engine () in
  let arrivals = ref [] in
  let queue = Net.Droptail.create ~capacity:8 () in
  let link =
    Net.Link.create ~engine ~bandwidth_bps:(Sim.Units.mbps 0.8) ~delay:0.001
      ~queue
      ~dst:(fun p -> arrivals := Net.Packet.seq_exn p :: !arrivals)
      ()
  in
  let events = ref [] in
  Faults.Injector.subscribe injector (fun ~time:_ event -> events := event :: !events);
  Faults.Injector.flap_link injector ~name:"trunk" ~policy link
    (Faults.Schedule.of_flaps [ (0.015, 1.0) ]);
  Sim.Engine.schedule_unit_at engine ~time:0.0 (fun () ->
      for seq = 1 to 5 do
        Net.Link.send link (packet seq)
      done);
  Sim.Engine.run engine;
  (injector, List.rev !arrivals, List.rev !events)

let test_flap_drop_queued () =
  let injector, arrivals, events = flap_fixture ~policy:`Drop_queued in
  Alcotest.(check (list int)) "only pre-outage packets survive" [ 1; 2 ] arrivals;
  Alcotest.(check int) "one down transition" 1 (Faults.Injector.downs injector);
  Alcotest.(check int) "backlog dropped" 3 (Faults.Injector.fault_drops injector);
  let drop_seqs =
    List.filter_map
      (function
        | Faults.Injector.Fault_drop { packet; _ } ->
          Some (Net.Packet.seq_exn packet)
        | _ -> None)
      events
  in
  Alcotest.(check (list int)) "drops evented in queue order" [ 3; 4; 5 ] drop_seqs;
  Alcotest.(check bool) "down evented" true
    (List.exists (function Faults.Injector.Link_down _ -> true | _ -> false) events);
  Alcotest.(check bool) "up evented" true
    (List.exists (function Faults.Injector.Link_up _ -> true | _ -> false) events)

let test_flap_hold_queued () =
  let injector, arrivals, _ = flap_fixture ~policy:`Hold_queued in
  Alcotest.(check (list int)) "backlog survives the outage" [ 1; 2; 3; 4; 5 ]
    arrivals;
  Alcotest.(check int) "nothing dropped" 0 (Faults.Injector.fault_drops injector)

(* Feed [n] packets one millisecond apart through a wrapper built by
   [wrap], recording each (arrival_time, seq). *)
let run_wrapped ~seed ~n wrap =
  let engine = Sim.Engine.create () in
  let injector = Faults.Injector.create ~engine () in
  let rng = Sim.Rng.create seed in
  let arrivals = ref [] in
  let next p =
    arrivals := (Sim.Engine.now engine, Net.Packet.seq_exn p) :: !arrivals
  in
  let consumer = wrap injector rng next in
  for i = 0 to n - 1 do
    Sim.Engine.schedule_unit_at engine
      ~time:(0.001 *. float_of_int i)
      (fun () -> consumer (packet i))
  done;
  Sim.Engine.run engine;
  (injector, List.rev !arrivals)

let test_reorder () =
  let max_extra = 0.05 in
  let wrap injector rng next =
    Faults.Injector.reorder injector ~path:"test" ~rng ~prob:0.5 ~max_extra next
  in
  let injector, arrivals = run_wrapped ~seed:42L ~n:50 wrap in
  Alcotest.(check int) "every packet delivered" 50 (List.length arrivals);
  Alcotest.(check bool) "some packets held" true
    (Faults.Injector.reordered injector > 0);
  Alcotest.(check bool) "order actually perturbed" true
    (List.map snd arrivals <> List.sort compare (List.map snd arrivals));
  List.iter
    (fun (t, seq) ->
      let sent = 0.001 *. float_of_int seq in
      Alcotest.(check bool) "within the hold-back bound" true
        (t >= sent -. 1e-9 && t <= sent +. max_extra +. 1e-9))
    arrivals;
  let _, again = run_wrapped ~seed:42L ~n:50 wrap in
  Alcotest.(check bool) "same seed, same arrival sequence" true
    (arrivals = again);
  let _, other = run_wrapped ~seed:43L ~n:50 wrap in
  Alcotest.(check bool) "different seed differs" true (arrivals <> other)

let test_jitter_preserves_fifo () =
  let max_jitter = 0.05 in
  let wrap injector rng next =
    Faults.Injector.jitter injector ~rng ~max_jitter next
  in
  let injector, arrivals = run_wrapped ~seed:42L ~n:50 wrap in
  Alcotest.(check int) "every packet counted" 50
    (Faults.Injector.jittered injector);
  Alcotest.(check (list int)) "FIFO order preserved"
    (List.init 50 Fun.id)
    (List.map snd arrivals);
  ignore
    (List.fold_left
       (fun prev (t, seq) ->
         Alcotest.(check bool) "delivery times non-decreasing" true (t >= prev);
         let sent = 0.001 *. float_of_int seq in
         Alcotest.(check bool) "delay within bound" true
           (t >= sent -. 1e-9 && t <= sent +. max_jitter +. 1e-9);
         t)
       0.0 arrivals)

(* -- the spec DSL -- *)

let spec_of s =
  match Faults.Spec.of_string s with
  | Ok spec -> spec
  | Error message -> Alcotest.failf "%S failed to parse: %s" s message

let test_spec_parse () =
  Alcotest.(check bool) "empty string is none" true
    (Faults.Spec.is_none (spec_of ""));
  Alcotest.(check string) "none renders empty" "" (Faults.Spec.to_string Faults.Spec.none);
  let spec = spec_of "drop,flap:4+0.5" in
  (match spec.Faults.Spec.flaps with
  | Some (Faults.Spec.Periodic { period; down_for }) ->
    Alcotest.(check (float 1e-9)) "period" 4.0 period;
    Alcotest.(check (float 1e-9)) "down_for" 0.5 down_for
  | _ -> Alcotest.fail "expected a periodic flap");
  Alcotest.(check bool) "drop policy" true
    (spec.Faults.Spec.flap_policy = `Drop_queued);
  Alcotest.(check string) "canonical clause order" "flap:4+0.5,drop"
    (Faults.Spec.to_string spec);
  let spec = spec_of "reorder:0.05" in
  (match spec.Faults.Spec.reorder with
  | Some { Faults.Spec.prob; max_extra } ->
    Alcotest.(check (float 1e-9)) "prob" 0.05 prob;
    Alcotest.(check (float 1e-9)) "default hold-back"
      Faults.Spec.default_reorder_extra max_extra
  | None -> Alcotest.fail "expected reorder");
  (match (spec_of "flap:rand:10+1").Faults.Spec.flaps with
  | Some (Faults.Spec.Random { mean_up; mean_down }) ->
    Alcotest.(check (float 1e-9)) "mean up" 10.0 mean_up;
    Alcotest.(check (float 1e-9)) "mean down" 1.0 mean_down
  | _ -> Alcotest.fail "expected a random flap");
  match (spec_of "flap:@2+2.5@8+9").Faults.Spec.flaps with
  | Some (Faults.Spec.Explicit pairs) ->
    Alcotest.(check int) "two explicit outages" 2 (List.length pairs)
  | _ -> Alcotest.fail "expected explicit flaps"

let test_spec_roundtrip () =
  List.iter
    (fun s ->
      let spec = spec_of s in
      let rendered = Faults.Spec.to_string spec in
      Alcotest.(check bool)
        (Printf.sprintf "%S: render/parse is the identity" s)
        true
        (spec_of rendered = spec);
      Alcotest.(check string)
        (Printf.sprintf "%S: render is idempotent" s)
        rendered
        (Faults.Spec.to_string (spec_of rendered)))
    [
      "";
      "flap:4+0.5";
      "flap:4+0.5,drop";
      "hold,flap:4+0.5";
      "flap:rand:10+1";
      "flap:@2+2.5@8+9,drop";
      "reorder:0.05";
      "reorder:0.05:0.1";
      "jitter:0.01";
      "reverse,jitter:0.01,reorder:0.02,flap:5+0.3";
      "fade:2+1+0.5+0.25";
      "handover:10+0.5";
      "handover:10+0.5+1+0.3";
      "asym:20";
      "fade:2+0.5,handover:8+0.4,asym:10,flap:4+0.5,drop";
    ]

let test_spec_rejects_garbage () =
  List.iter
    (fun s ->
      match Faults.Spec.of_string s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error message ->
        Alcotest.(check bool)
          (Printf.sprintf "%S error names the clause" s)
          true
          (String.length message > 0))
    [
      "bogus";
      "flap:zzz";
      "flap:4";
      "flap:0.5+4";
      (* down_for >= period *)
      "reorder:1.5";
      "reorder:-0.1";
      "jitter:0";
      "jitter:-1";
      "fade:2" (* needs at least one level *);
      "fade:0+0.5" (* period must be positive *);
      "fade:2+0" (* levels must be positive *);
      "handover:10" (* needs a gap *);
      "handover:1+2" (* gap must be < period *);
      "handover:10+0.5+0" (* levels must be positive *);
      "asym:0.5" (* ratio must be >= 1 *);
      "asym:zzz";
    ]

let test_spec_hostile_parse () =
  let spec = spec_of "fade:2+1+0.5+0.25" in
  (match spec.Faults.Spec.fade with
  | Some { Faults.Spec.fade_period; fade_levels } ->
    Alcotest.(check (float 1e-9)) "fade period" 2.0 fade_period;
    Alcotest.(check int) "fade levels" 3 (List.length fade_levels)
  | None -> Alcotest.fail "expected a fade clause");
  (match (spec_of "handover:10+0.5").Faults.Spec.handover with
  | Some { Faults.Spec.ho_period; ho_gap; ho_levels } ->
    Alcotest.(check (float 1e-9)) "handover period" 10.0 ho_period;
    Alcotest.(check (float 1e-9)) "handover gap" 0.5 ho_gap;
    Alcotest.(check bool) "default levels" true
      (ho_levels = Faults.Spec.default_handover_levels)
  | None -> Alcotest.fail "expected a handover clause");
  (match (spec_of "asym:20").Faults.Spec.asym with
  | Some ratio -> Alcotest.(check (float 1e-9)) "asym ratio" 20.0 ratio
  | None -> Alcotest.fail "expected an asym clause");
  Alcotest.(check bool) "hostile clauses are not none" false
    (Faults.Spec.is_none (spec_of "asym:20"));
  Alcotest.(check bool) "has_timeline on fade" true
    (Faults.Spec.has_timeline (spec_of "fade:2+0.5"));
  Alcotest.(check bool) "has_timeline off for flaps" false
    (Faults.Spec.has_timeline (spec_of "flap:4+0.5"))

(* -- the timeline step form (--link-schedule) -- *)

let timeline_of s =
  match Faults.Timeline.of_string s with
  | Ok t -> t
  | Error message -> Alcotest.failf "%S failed to parse: %s" s message

let test_timeline_string_form () =
  Alcotest.(check bool) "empty string is the empty timeline" true
    (Faults.Timeline.is_empty (timeline_of ""));
  let t = timeline_of "@2+400000@5+-+0.25@8+1e6+0.1" in
  (match Faults.Timeline.steps t with
  | [ s1; s2; s3 ] ->
    Alcotest.(check (float 1e-9)) "step 1 at" 2.0 s1.Faults.Timeline.at;
    Alcotest.(check bool) "step 1 rate" true
      (s1.Faults.Timeline.rate = Some 400000.0);
    Alcotest.(check bool) "step 1 delay unchanged" true
      (s1.Faults.Timeline.delay = None);
    Alcotest.(check bool) "step 2 rate unchanged" true
      (s2.Faults.Timeline.rate = None);
    Alcotest.(check bool) "step 2 delay" true
      (s2.Faults.Timeline.delay = Some 0.25);
    Alcotest.(check bool) "step 3 both" true
      (s3.Faults.Timeline.rate = Some 1e6
      && s3.Faults.Timeline.delay = Some 0.1)
  | steps -> Alcotest.failf "expected 3 steps, got %d" (List.length steps));
  List.iter
    (fun s ->
      let rendered = Faults.Timeline.to_string (timeline_of s) in
      Alcotest.(check string)
        (Printf.sprintf "%S: render is idempotent" s)
        rendered
        (Faults.Timeline.to_string (timeline_of rendered)))
    [ "@2+400000"; "@2+400000@5+-+0.25"; "@1+500000+0.05@2+250000" ];
  List.iter
    (fun s ->
      match Faults.Timeline.of_string s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error message ->
        Alcotest.(check bool)
          (Printf.sprintf "%S error is descriptive" s)
          true
          (String.length message > 0))
    [
      "5+400000" (* missing '@' *);
      "@zzz+400000";
      "@5" (* no fields *);
      "@5+-" (* changes nothing *);
      "@5+0" (* rate must be positive *);
      "@5+-+-1" (* delay must be non-negative *);
      "@5+400000@2+500000" (* times must increase *);
    ]

(* -- properties over whole scenarios -- *)

let run_faulted ?(variant = Core.Variant.Rr) ?(seed = 7L) ?(duration = 5.0)
    ?trace_out spec_string =
  let faults = spec_of spec_string in
  let config = Net.Dumbbell.paper_config ~flows:2 in
  Experiments.Scenario.run
    (Experiments.Scenario.make ~topology:(Experiments.Scenario.dumbbell config)
       ~flows:
         [
           Experiments.Scenario.flow variant;
           Experiments.Scenario.flow Core.Variant.Newreno;
         ]
       ~params:{ Tcp.Params.default with rwnd = 20 }
       ~seed ~duration ~uniform_loss:0.01 ?trace_out ~faults ())

let test_faulted_scenarios_stay_clean () =
  List.iter
    (fun spec ->
      let t = run_faulted spec in
      Alcotest.(check bool)
        (Printf.sprintf "%S: auditor clean" spec)
        true
        (Audit.Auditor.ok t.Experiments.Scenario.auditor);
      Alcotest.(check bool)
        (Printf.sprintf "%S: checks ran" spec)
        true
        (Audit.Auditor.checks_run t.Experiments.Scenario.auditor > 1000))
    [
      "flap:2+0.3";
      "flap:2+0.3,drop";
      "flap:rand:2+0.5,drop";
      "reorder:0.1";
      "jitter:0.01,reverse";
      "flap:3+0.4,drop,reorder:0.05,jitter:0.005,reverse";
    ]

(* Property form: random flap/reorder/jitter parameters, random seed —
   the conservation, FIFO-per-flow and sender-window invariants must
   all hold with the injector active. *)
let prop_random_faults_stay_clean =
  QCheck2.Test.make ~name:"auditor finds no violations under random faults"
    ~count:15
    QCheck2.Gen.(
      tup4 (int_range 1 10_000)
        (oneofl [ "flap:%g+%g"; "flap:rand:%g+%g,drop"; "flap:%g+%g,drop" ])
        (tup2 (float_range 1.0 4.0) (float_range 0.1 0.8))
        (oneofl [ ""; ",reorder:0.05"; ",jitter:0.01"; ",reorder:0.1,reverse" ]))
    (fun (seed, flap_format, (period, down_for), extra) ->
      let spec =
        Printf.sprintf (Scanf.format_from_string flap_format "%g+%g") period
          down_for
        ^ extra
      in
      let t = run_faulted ~seed:(Int64.of_int seed) ~duration:3.0 spec in
      Audit.Auditor.ok t.Experiments.Scenario.auditor)

let with_scheduler scheduler f =
  let saved = Sim.Engine.default_scheduler () in
  Sim.Engine.set_default_scheduler scheduler;
  Fun.protect ~finally:(fun () -> Sim.Engine.set_default_scheduler saved) f

let faulted_trace scheduler =
  with_scheduler scheduler (fun () ->
      let path = Filename.temp_file "rr-faults" ".jsonl" in
      let out = open_out path in
      ignore
        (run_faulted ~trace_out:out
           "flap:1.5+0.3,drop,reorder:0.05,jitter:0.005"
          : Experiments.Scenario.t);
      close_out out;
      let ic = open_in_bin path in
      let contents =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Sys.remove path;
      contents)

let test_faulted_trace_deterministic () =
  let heap = faulted_trace `Heap in
  Alcotest.(check bool) "trace non-trivial" true (String.length heap > 10_000);
  Alcotest.(check string) "same seed, same bytes" heap (faulted_trace `Heap);
  Alcotest.(check string) "byte-identical across schedulers" heap
    (faulted_trace `Calendar);
  List.iter
    (fun kind ->
      Alcotest.(check bool) ("trace carries " ^ kind) true
        (let pattern = Printf.sprintf {|"ev":"%s"|} kind in
         let plen = String.length pattern in
         let rec scan i =
           i + plen <= String.length heap
           && (String.sub heap i plen = pattern || scan (i + 1))
         in
         scan 0))
    [ "link_down"; "link_up"; "fault_drop"; "reorder" ]

(* Property: under an arbitrary rate/delay timeline, a link neither
   loses a packet (except by queue drop, which is counted) nor
   duplicates one, and deliveries stay FIFO — the [last_arrival] clamp
   must prevent a packet entering the wire after a delay *decrease*
   from overtaking one already propagating. *)
let prop_timeline_link_exactly_once_fifo =
  QCheck2.Test.make
    ~name:"time-varying link delivers exactly once, in FIFO order" ~count:30
    QCheck2.Gen.(
      tup3
        (list_size (int_range 1 6)
           (tup3
              (float_range 0.05 3.0)
              (float_range 20_000.0 2_000_000.0)
              (float_range 0.0 0.4)))
        (int_range 2 10) (int_range 10 60))
    (fun (steps, capacity, offered) ->
      let engine = Sim.Engine.create () in
      let dropped = ref 0 in
      let queue =
        Net.Droptail.create ~capacity ~on_drop:(fun _ -> incr dropped) ()
      in
      let delivered = ref [] in
      let link =
        Net.Link.create ~engine ~bandwidth_bps:(Sim.Units.mbps 0.8)
          ~delay:0.05 ~queue
          ~dst:(fun p -> delivered := Net.Packet.seq_exn p :: !delivered)
          ()
      in
      List.iter
        (fun (at, rate, delay) ->
          Sim.Engine.schedule_unit_at engine ~time:at (fun () ->
              Net.Link.set_rate link rate;
              Net.Link.set_delay link delay))
        steps;
      for i = 0 to offered - 1 do
        Sim.Engine.schedule_unit_at engine
          ~time:(0.004 *. float_of_int i)
          (fun () -> Net.Link.send link (packet i))
      done;
      Sim.Engine.run engine;
      let got = List.rev !delivered in
      List.length got + !dropped = offered
      (* Strictly increasing seqs = no duplicate, no overtaking; drops
         happen at enqueue, so deliveries are a subsequence of the
         offered order. *)
      && got = List.sort_uniq compare got)

(* The hostile-network machinery must cost nothing when unused: a run
   with no fault spec and no link schedule produces the same trace
   bytes as before the time-varying link work. The digest pins the
   CLI's [run --variant rr --flows 2 --duration 10 --loss 0.01 --seed
   7 --trace ...] output; if an intentional trace-format change breaks
   it, re-record with [md5sum] on that command's output. *)
let clean_trace_digest = "907898842d385974aba2bb8934e5ac3a"

let test_clean_trace_byte_identity () =
  let trace =
    with_scheduler `Calendar (fun () ->
        let path = Filename.temp_file "rr-clean" ".jsonl" in
        let out = open_out path in
        let config = Net.Dumbbell.paper_config ~flows:2 in
        ignore
          (Experiments.Scenario.run
             (Experiments.Scenario.make
                ~topology:(Experiments.Scenario.dumbbell config)
                ~flows:
                  [
                    Experiments.Scenario.flow Core.Variant.Rr;
                    Experiments.Scenario.flow Core.Variant.Rr;
                  ]
                ~params:{ Tcp.Params.default with rwnd = 20 }
                ~seed:7L ~duration:10.0 ~uniform_loss:0.01 ~ack_loss:0.0
                ~delayed_ack:false ~monitor_queue:0.1 ~trace_out:out
                ~trace_format:`Jsonl ~faults:Faults.Spec.none ~audit_sample:1
                ())
            : Experiments.Scenario.t);
        close_out out;
        let ic = open_in_bin path in
        let contents =
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        Sys.remove path;
        contents)
  in
  Alcotest.(check string) "clean trace digest unchanged" clean_trace_digest
    (Digest.to_hex (Digest.string trace))

let suite =
  [
    ( "faults",
      [
        Alcotest.test_case "schedule of_flaps" `Quick test_of_flaps;
        Alcotest.test_case "schedule periodic" `Quick test_periodic;
        Alcotest.test_case "schedule random" `Quick test_random_schedule;
        Alcotest.test_case "truncated schedule restores link" `Quick
          test_truncated_schedule_restores_link;
        Alcotest.test_case "flap drops backlog" `Quick test_flap_drop_queued;
        Alcotest.test_case "flap holds backlog" `Quick test_flap_hold_queued;
        Alcotest.test_case "reorder bound + determinism" `Quick test_reorder;
        Alcotest.test_case "jitter preserves FIFO" `Quick
          test_jitter_preserves_fifo;
        Alcotest.test_case "spec parse" `Quick test_spec_parse;
        Alcotest.test_case "spec roundtrip" `Quick test_spec_roundtrip;
        Alcotest.test_case "spec rejects garbage" `Quick
          test_spec_rejects_garbage;
        Alcotest.test_case "spec hostile clauses" `Quick
          test_spec_hostile_parse;
        Alcotest.test_case "timeline string form" `Quick
          test_timeline_string_form;
        Alcotest.test_case "faulted scenarios stay clean" `Slow
          test_faulted_scenarios_stay_clean;
        QCheck_alcotest.to_alcotest prop_random_faults_stay_clean;
        QCheck_alcotest.to_alcotest prop_timeline_link_exactly_once_fifo;
        Alcotest.test_case "faulted trace deterministic" `Quick
          test_faulted_trace_deterministic;
        Alcotest.test_case "clean trace byte-identical" `Slow
          test_clean_trace_byte_identity;
      ] );
  ]
