(* Fault-injection subsystem tests, in three layers:

   - schedules: the pure timelines (explicit, periodic, random) and
     their validation;
   - mechanisms: flap drop/hold semantics against a live link, the
     reorder hold-back bound, and the FIFO guarantee of jitter — all
     deterministic under a fixed RNG;
   - properties: any fault spec the generator produces leaves the
     runtime auditor clean, and a faulted scenario's JSONL trace is
     byte-identical across seeds and event schedulers. *)

let packet ?(flow = 0) ?(size = 1000) seq =
  Net.Packet.data ~uid:seq ~flow ~seq ~size_bytes:size ~born:0.0

let times schedule =
  List.map
    (fun tr -> tr.Faults.Schedule.at)
    (Faults.Schedule.transitions schedule)

(* -- schedules -- *)

let test_of_flaps () =
  let s = Faults.Schedule.of_flaps [ (2.0, 2.5); (8.0, 9.0) ] in
  Alcotest.(check (list (float 1e-9))) "transition times" [ 2.0; 2.5; 8.0; 9.0 ]
    (times s);
  Alcotest.(check (list bool)) "down/up alternation" [ false; true; false; true ]
    (List.map (fun tr -> tr.Faults.Schedule.up) (Faults.Schedule.transitions s));
  Alcotest.(check bool) "empty" true (Faults.Schedule.is_empty (Faults.Schedule.of_flaps []));
  Alcotest.check_raises "up before down"
    (Invalid_argument "Schedule.of_flaps: up_at <= down_at") (fun () ->
      ignore (Faults.Schedule.of_flaps [ (2.0, 2.0) ]));
  Alcotest.check_raises "overlapping outages"
    (Invalid_argument "Schedule.of_flaps: flaps not strictly increasing")
    (fun () -> ignore (Faults.Schedule.of_flaps [ (2.0, 3.0); (2.5, 4.0) ]));
  Alcotest.check_raises "negative time"
    (Invalid_argument "Schedule.of_flaps: negative time") (fun () ->
      ignore (Faults.Schedule.of_flaps [ (-1.0, 1.0) ]))

let test_periodic () =
  let s = Faults.Schedule.periodic ~period:5.0 ~down_for:0.3 ~until:12.0 () in
  Alcotest.(check (list (float 1e-9))) "handoff every 5 s" [ 5.0; 5.3; 10.0; 10.3 ]
    (times s);
  (* A restore falling past [until] is still emitted: the link never
     ends a schedule stuck down. *)
  let s = Faults.Schedule.periodic ~period:5.0 ~down_for:2.0 ~until:11.5 () in
  Alcotest.(check (list (float 1e-9))) "restore past until kept"
    [ 5.0; 7.0; 10.0; 12.0 ] (times s);
  Alcotest.check_raises "down_for >= period"
    (Invalid_argument "Schedule.periodic: need 0 < down_for < period")
    (fun () ->
      ignore (Faults.Schedule.periodic ~period:1.0 ~down_for:1.0 ~until:5.0 ()))

let test_random_schedule () =
  let build seed =
    Faults.Schedule.random ~rng:(Sim.Rng.create seed) ~mean_up:3.0
      ~mean_down:0.5 ~until:60.0 ()
  in
  let a = Faults.Schedule.transitions (build 7L) in
  Alcotest.(check bool) "non-trivial" true (List.length a >= 4);
  Alcotest.(check bool) "equal seeds, equal schedules" true
    (a = Faults.Schedule.transitions (build 7L));
  Alcotest.(check bool) "distinct seeds differ" true
    (a <> Faults.Schedule.transitions (build 8L));
  let rec alternating expected_up = function
    | [] -> true
    | tr :: rest ->
      tr.Faults.Schedule.up = expected_up && alternating (not expected_up) rest
  in
  Alcotest.(check bool) "starts down, alternates" true (alternating false a);
  let ts = List.map (fun tr -> tr.Faults.Schedule.at) a in
  Alcotest.(check bool) "strictly increasing" true
    (List.for_all2 (fun x y -> x < y) (List.filteri (fun i _ -> i < List.length ts - 1) ts)
       (List.tl ts))

(* -- mechanisms -- *)

(* 0.8 Mbps and 1000-byte packets: 10 ms serialization. Five packets
   sent at t=0; the link goes down at 15 ms, when packet 1 has been
   delivered, packet 2 is on the wire, and 3..5 sit in the queue. *)
let flap_fixture ~policy =
  let engine = Sim.Engine.create () in
  let injector = Faults.Injector.create ~engine () in
  let arrivals = ref [] in
  let queue = Net.Droptail.create ~capacity:8 () in
  let link =
    Net.Link.create ~engine ~bandwidth_bps:(Sim.Units.mbps 0.8) ~delay:0.001
      ~queue
      ~dst:(fun p -> arrivals := Net.Packet.seq_exn p :: !arrivals)
      ()
  in
  let events = ref [] in
  Faults.Injector.subscribe injector (fun ~time:_ event -> events := event :: !events);
  Faults.Injector.flap_link injector ~name:"trunk" ~policy link
    (Faults.Schedule.of_flaps [ (0.015, 1.0) ]);
  Sim.Engine.schedule_unit_at engine ~time:0.0 (fun () ->
      for seq = 1 to 5 do
        Net.Link.send link (packet seq)
      done);
  Sim.Engine.run engine;
  (injector, List.rev !arrivals, List.rev !events)

let test_flap_drop_queued () =
  let injector, arrivals, events = flap_fixture ~policy:`Drop_queued in
  Alcotest.(check (list int)) "only pre-outage packets survive" [ 1; 2 ] arrivals;
  Alcotest.(check int) "one down transition" 1 (Faults.Injector.downs injector);
  Alcotest.(check int) "backlog dropped" 3 (Faults.Injector.fault_drops injector);
  let drop_seqs =
    List.filter_map
      (function
        | Faults.Injector.Fault_drop { packet; _ } ->
          Some (Net.Packet.seq_exn packet)
        | _ -> None)
      events
  in
  Alcotest.(check (list int)) "drops evented in queue order" [ 3; 4; 5 ] drop_seqs;
  Alcotest.(check bool) "down evented" true
    (List.exists (function Faults.Injector.Link_down _ -> true | _ -> false) events);
  Alcotest.(check bool) "up evented" true
    (List.exists (function Faults.Injector.Link_up _ -> true | _ -> false) events)

let test_flap_hold_queued () =
  let injector, arrivals, _ = flap_fixture ~policy:`Hold_queued in
  Alcotest.(check (list int)) "backlog survives the outage" [ 1; 2; 3; 4; 5 ]
    arrivals;
  Alcotest.(check int) "nothing dropped" 0 (Faults.Injector.fault_drops injector)

(* Feed [n] packets one millisecond apart through a wrapper built by
   [wrap], recording each (arrival_time, seq). *)
let run_wrapped ~seed ~n wrap =
  let engine = Sim.Engine.create () in
  let injector = Faults.Injector.create ~engine () in
  let rng = Sim.Rng.create seed in
  let arrivals = ref [] in
  let next p =
    arrivals := (Sim.Engine.now engine, Net.Packet.seq_exn p) :: !arrivals
  in
  let consumer = wrap injector rng next in
  for i = 0 to n - 1 do
    Sim.Engine.schedule_unit_at engine
      ~time:(0.001 *. float_of_int i)
      (fun () -> consumer (packet i))
  done;
  Sim.Engine.run engine;
  (injector, List.rev !arrivals)

let test_reorder () =
  let max_extra = 0.05 in
  let wrap injector rng next =
    Faults.Injector.reorder injector ~path:"test" ~rng ~prob:0.5 ~max_extra next
  in
  let injector, arrivals = run_wrapped ~seed:42L ~n:50 wrap in
  Alcotest.(check int) "every packet delivered" 50 (List.length arrivals);
  Alcotest.(check bool) "some packets held" true
    (Faults.Injector.reordered injector > 0);
  Alcotest.(check bool) "order actually perturbed" true
    (List.map snd arrivals <> List.sort compare (List.map snd arrivals));
  List.iter
    (fun (t, seq) ->
      let sent = 0.001 *. float_of_int seq in
      Alcotest.(check bool) "within the hold-back bound" true
        (t >= sent -. 1e-9 && t <= sent +. max_extra +. 1e-9))
    arrivals;
  let _, again = run_wrapped ~seed:42L ~n:50 wrap in
  Alcotest.(check bool) "same seed, same arrival sequence" true
    (arrivals = again);
  let _, other = run_wrapped ~seed:43L ~n:50 wrap in
  Alcotest.(check bool) "different seed differs" true (arrivals <> other)

let test_jitter_preserves_fifo () =
  let max_jitter = 0.05 in
  let wrap injector rng next =
    Faults.Injector.jitter injector ~rng ~max_jitter next
  in
  let injector, arrivals = run_wrapped ~seed:42L ~n:50 wrap in
  Alcotest.(check int) "every packet counted" 50
    (Faults.Injector.jittered injector);
  Alcotest.(check (list int)) "FIFO order preserved"
    (List.init 50 Fun.id)
    (List.map snd arrivals);
  ignore
    (List.fold_left
       (fun prev (t, seq) ->
         Alcotest.(check bool) "delivery times non-decreasing" true (t >= prev);
         let sent = 0.001 *. float_of_int seq in
         Alcotest.(check bool) "delay within bound" true
           (t >= sent -. 1e-9 && t <= sent +. max_jitter +. 1e-9);
         t)
       0.0 arrivals)

(* -- the spec DSL -- *)

let spec_of s =
  match Faults.Spec.of_string s with
  | Ok spec -> spec
  | Error message -> Alcotest.failf "%S failed to parse: %s" s message

let test_spec_parse () =
  Alcotest.(check bool) "empty string is none" true
    (Faults.Spec.is_none (spec_of ""));
  Alcotest.(check string) "none renders empty" "" (Faults.Spec.to_string Faults.Spec.none);
  let spec = spec_of "drop,flap:4+0.5" in
  (match spec.Faults.Spec.flaps with
  | Some (Faults.Spec.Periodic { period; down_for }) ->
    Alcotest.(check (float 1e-9)) "period" 4.0 period;
    Alcotest.(check (float 1e-9)) "down_for" 0.5 down_for
  | _ -> Alcotest.fail "expected a periodic flap");
  Alcotest.(check bool) "drop policy" true
    (spec.Faults.Spec.flap_policy = `Drop_queued);
  Alcotest.(check string) "canonical clause order" "flap:4+0.5,drop"
    (Faults.Spec.to_string spec);
  let spec = spec_of "reorder:0.05" in
  (match spec.Faults.Spec.reorder with
  | Some { Faults.Spec.prob; max_extra } ->
    Alcotest.(check (float 1e-9)) "prob" 0.05 prob;
    Alcotest.(check (float 1e-9)) "default hold-back"
      Faults.Spec.default_reorder_extra max_extra
  | None -> Alcotest.fail "expected reorder");
  (match (spec_of "flap:rand:10+1").Faults.Spec.flaps with
  | Some (Faults.Spec.Random { mean_up; mean_down }) ->
    Alcotest.(check (float 1e-9)) "mean up" 10.0 mean_up;
    Alcotest.(check (float 1e-9)) "mean down" 1.0 mean_down
  | _ -> Alcotest.fail "expected a random flap");
  match (spec_of "flap:@2+2.5@8+9").Faults.Spec.flaps with
  | Some (Faults.Spec.Explicit pairs) ->
    Alcotest.(check int) "two explicit outages" 2 (List.length pairs)
  | _ -> Alcotest.fail "expected explicit flaps"

let test_spec_roundtrip () =
  List.iter
    (fun s ->
      let spec = spec_of s in
      let rendered = Faults.Spec.to_string spec in
      Alcotest.(check bool)
        (Printf.sprintf "%S: render/parse is the identity" s)
        true
        (spec_of rendered = spec);
      Alcotest.(check string)
        (Printf.sprintf "%S: render is idempotent" s)
        rendered
        (Faults.Spec.to_string (spec_of rendered)))
    [
      "";
      "flap:4+0.5";
      "flap:4+0.5,drop";
      "hold,flap:4+0.5";
      "flap:rand:10+1";
      "flap:@2+2.5@8+9,drop";
      "reorder:0.05";
      "reorder:0.05:0.1";
      "jitter:0.01";
      "reverse,jitter:0.01,reorder:0.02,flap:5+0.3";
    ]

let test_spec_rejects_garbage () =
  List.iter
    (fun s ->
      match Faults.Spec.of_string s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error message ->
        Alcotest.(check bool)
          (Printf.sprintf "%S error names the clause" s)
          true
          (String.length message > 0))
    [
      "bogus";
      "flap:zzz";
      "flap:4";
      "flap:0.5+4";
      (* down_for >= period *)
      "reorder:1.5";
      "reorder:-0.1";
      "jitter:0";
      "jitter:-1";
    ]

(* -- properties over whole scenarios -- *)

let run_faulted ?(variant = Core.Variant.Rr) ?(seed = 7L) ?(duration = 5.0)
    ?trace_out spec_string =
  let faults = spec_of spec_string in
  let config = Net.Dumbbell.paper_config ~flows:2 in
  Experiments.Scenario.run
    (Experiments.Scenario.make ~topology:(Experiments.Scenario.dumbbell config)
       ~flows:
         [
           Experiments.Scenario.flow variant;
           Experiments.Scenario.flow Core.Variant.Newreno;
         ]
       ~params:{ Tcp.Params.default with rwnd = 20 }
       ~seed ~duration ~uniform_loss:0.01 ?trace_out ~faults ())

let test_faulted_scenarios_stay_clean () =
  List.iter
    (fun spec ->
      let t = run_faulted spec in
      Alcotest.(check bool)
        (Printf.sprintf "%S: auditor clean" spec)
        true
        (Audit.Auditor.ok t.Experiments.Scenario.auditor);
      Alcotest.(check bool)
        (Printf.sprintf "%S: checks ran" spec)
        true
        (Audit.Auditor.checks_run t.Experiments.Scenario.auditor > 1000))
    [
      "flap:2+0.3";
      "flap:2+0.3,drop";
      "flap:rand:2+0.5,drop";
      "reorder:0.1";
      "jitter:0.01,reverse";
      "flap:3+0.4,drop,reorder:0.05,jitter:0.005,reverse";
    ]

(* Property form: random flap/reorder/jitter parameters, random seed —
   the conservation, FIFO-per-flow and sender-window invariants must
   all hold with the injector active. *)
let prop_random_faults_stay_clean =
  QCheck2.Test.make ~name:"auditor finds no violations under random faults"
    ~count:15
    QCheck2.Gen.(
      tup4 (int_range 1 10_000)
        (oneofl [ "flap:%g+%g"; "flap:rand:%g+%g,drop"; "flap:%g+%g,drop" ])
        (tup2 (float_range 1.0 4.0) (float_range 0.1 0.8))
        (oneofl [ ""; ",reorder:0.05"; ",jitter:0.01"; ",reorder:0.1,reverse" ]))
    (fun (seed, flap_format, (period, down_for), extra) ->
      let spec =
        Printf.sprintf (Scanf.format_from_string flap_format "%g+%g") period
          down_for
        ^ extra
      in
      let t = run_faulted ~seed:(Int64.of_int seed) ~duration:3.0 spec in
      Audit.Auditor.ok t.Experiments.Scenario.auditor)

let with_scheduler scheduler f =
  let saved = Sim.Engine.default_scheduler () in
  Sim.Engine.set_default_scheduler scheduler;
  Fun.protect ~finally:(fun () -> Sim.Engine.set_default_scheduler saved) f

let faulted_trace scheduler =
  with_scheduler scheduler (fun () ->
      let path = Filename.temp_file "rr-faults" ".jsonl" in
      let out = open_out path in
      ignore
        (run_faulted ~trace_out:out
           "flap:1.5+0.3,drop,reorder:0.05,jitter:0.005"
          : Experiments.Scenario.t);
      close_out out;
      let ic = open_in_bin path in
      let contents =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Sys.remove path;
      contents)

let test_faulted_trace_deterministic () =
  let heap = faulted_trace `Heap in
  Alcotest.(check bool) "trace non-trivial" true (String.length heap > 10_000);
  Alcotest.(check string) "same seed, same bytes" heap (faulted_trace `Heap);
  Alcotest.(check string) "byte-identical across schedulers" heap
    (faulted_trace `Calendar);
  List.iter
    (fun kind ->
      Alcotest.(check bool) ("trace carries " ^ kind) true
        (let pattern = Printf.sprintf {|"ev":"%s"|} kind in
         let plen = String.length pattern in
         let rec scan i =
           i + plen <= String.length heap
           && (String.sub heap i plen = pattern || scan (i + 1))
         in
         scan 0))
    [ "link_down"; "link_up"; "fault_drop"; "reorder" ]

let suite =
  [
    ( "faults",
      [
        Alcotest.test_case "schedule of_flaps" `Quick test_of_flaps;
        Alcotest.test_case "schedule periodic" `Quick test_periodic;
        Alcotest.test_case "schedule random" `Quick test_random_schedule;
        Alcotest.test_case "flap drops backlog" `Quick test_flap_drop_queued;
        Alcotest.test_case "flap holds backlog" `Quick test_flap_hold_queued;
        Alcotest.test_case "reorder bound + determinism" `Quick test_reorder;
        Alcotest.test_case "jitter preserves FIFO" `Quick
          test_jitter_preserves_fifo;
        Alcotest.test_case "spec parse" `Quick test_spec_parse;
        Alcotest.test_case "spec roundtrip" `Quick test_spec_roundtrip;
        Alcotest.test_case "spec rejects garbage" `Quick
          test_spec_rejects_garbage;
        Alcotest.test_case "faulted scenarios stay clean" `Slow
          test_faulted_scenarios_stay_clean;
        QCheck_alcotest.to_alcotest prop_random_faults_stay_clean;
        Alcotest.test_case "faulted trace deterministic" `Quick
          test_faulted_trace_deterministic;
      ] );
  ]
