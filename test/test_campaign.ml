(* Campaign layer: grid expansion, the fork pool, the content-addressed
   result cache, cross-seed aggregation, and the experiment registry. *)

let tiny_grid ?(seed_count = 2) () =
  (* Small enough to keep the suite fast, lossy enough to exercise the
     recovery paths the metrics summarise. *)
  Campaign.Sweep.grid
    ~variants:Core.Variant.[ Newreno; Rr ]
    ~uniform_losses:[ 0.01 ] ~seed:11L ~seed_count ~duration:3.0 ~flows:2 ()

let temp_cache_dir () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rr-campaign-test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Campaign.Cache.create ~dir ()

(* -- grid expansion and job identity -- *)

let test_grid_expansion () =
  let grid =
    Campaign.Sweep.grid
      ~variants:Core.Variant.[ Reno; Rr ]
      ~gateways:[ Campaign.Job.Droptail 8; Campaign.Job.Red 25 ]
      ~uniform_losses:[ 0.0; 0.02 ] ~ack_losses:[ 0.0 ] ~seed_count:3 ()
  in
  let jobs = Campaign.Sweep.jobs_of_grid grid in
  Alcotest.(check int) "cartesian product size" (2 * 2 * 2 * 3)
    (List.length jobs);
  let digests = List.map Campaign.Job.digest jobs in
  Alcotest.(check int) "digests are pairwise distinct"
    (List.length jobs)
    (List.length (List.sort_uniq compare digests))

let test_digest_stability () =
  let job =
    {
      Campaign.Job.variant = Core.Variant.Rr;
      gateway = Campaign.Job.Droptail 8;
      topology = Campaign.Job.Dumbbell;
      uniform_loss = 0.02;
      ack_loss = 0.0;
      reorder = 0.0;
      flap_period = 0.0;
      cbr_share = 0.0;
      estimator = Tcp.Rto.Jacobson;
      rrr_level = 0.5;
      asym_ratio = 0.0;
      handover_period = 0.0;
      seed = 7L;
      duration = 20.0;
      flows = 2;
      rwnd = 20;
    }
  in
  Alcotest.(check string)
    "equal jobs hash equally" (Campaign.Job.digest job)
    (Campaign.Job.digest { job with seed = 7L });
  Alcotest.(check bool)
    "the seed is part of the key" true
    (Campaign.Job.digest job <> Campaign.Job.digest { job with seed = 8L });
  Alcotest.(check bool)
    "the gateway is part of the key" true
    (Campaign.Job.digest job
    <> Campaign.Job.digest { job with gateway = Campaign.Job.Red 8 });
  Alcotest.(check bool)
    "the RTO estimator is part of the key" true
    (Campaign.Job.digest job
    <> Campaign.Job.digest { job with estimator = Tcp.Rto.Rfc793 })

(* -- the fork pool -- *)

let test_pool_order_and_results () =
  let inputs = List.init 17 Fun.id in
  let expected = List.map (fun x -> x * x) inputs in
  Alcotest.(check (list int))
    "parallel map preserves input order" expected
    (Campaign.Pool.map ~jobs:4 (fun x -> x * x) inputs);
  Alcotest.(check (list int))
    "serial fallback agrees" expected
    (Campaign.Pool.map ~jobs:1 (fun x -> x * x) inputs)

let test_pool_propagates_failure () =
  Alcotest.check_raises "a failing worker fails the batch"
    (Failure "campaign worker: Failure(\"boom\")") (fun () ->
      ignore
        (Campaign.Pool.map ~jobs:2
           (fun x -> if x = 2 then failwith "boom" else x)
           [ 0; 1; 2; 3 ]))

(* -- pool supervision: deadlines, retries, quarantine, chaos -- *)

let with_chaos plan f =
  Campaign.Pool.chaos := Some plan;
  Fun.protect ~finally:(fun () -> Campaign.Pool.chaos := None) f

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  loop 0

let check_contains what needle haystack =
  if not (contains ~needle haystack) then
    Alcotest.failf "%s: %S not found in %S" what needle haystack

let test_chaos_spec_parsing () =
  (match Campaign.Pool.chaos_of_string "crash:1;hang:2*;trunc:0@2" with
  | Error message -> Alcotest.failf "parse failed: %s" message
  | Ok plan ->
    let check name expected index attempt =
      Alcotest.(check bool) name true (plan ~index ~attempt = expected)
    in
    check "crash on the first attempt" (Some Campaign.Pool.Crash) 1 1;
    check "crash clears on retry" None 1 2;
    check "hang on every attempt" (Some Campaign.Pool.Hang) 2 1;
    check "hang still on attempt 3" (Some Campaign.Pool.Hang) 2 3;
    check "truncate only on attempt 2" (Some Campaign.Pool.Truncate) 0 2;
    check "no truncate on attempt 1" None 0 1;
    check "untargeted jobs run clean" None 3 1);
  List.iter
    (fun spec ->
      Alcotest.(check bool)
        (Printf.sprintf "%S is rejected" spec)
        true
        (Result.is_error (Campaign.Pool.chaos_of_string spec)))
    [ "bogus"; "explode:1"; "crash:-1"; "crash:x"; "crash:1@0"; "" ]

let test_pool_worker_sigkilled () =
  with_chaos
    (fun ~index ~attempt:_ -> if index = 1 then Some Campaign.Pool.Crash else None)
  @@ fun () ->
  match Campaign.Pool.run ~jobs:2 (fun x -> x + 1) [ 10; 20; 30 ] with
  | [ Campaign.Pool.Settled 11; Failed (Crashed reason); Settled 31 ] ->
    check_contains "crash diagnostic names the signal" "SIGKILL" reason
  | _ -> Alcotest.fail "expected [Settled 11; Failed (Crashed _); Settled 31]"

let test_pool_hung_worker_times_out () =
  with_chaos
    (fun ~index ~attempt:_ -> if index = 0 then Some Campaign.Pool.Hang else None)
  @@ fun () ->
  let policy = { Campaign.Pool.default_policy with timeout = Some 0.4 } in
  match Campaign.Pool.run ~jobs:2 ~policy (fun x -> x * 2) [ 1; 2 ] with
  | [ Campaign.Pool.Failed (Timed_out deadline); Settled 4 ] ->
    Alcotest.(check (float 1e-9)) "reports the configured deadline" 0.4 deadline
  | _ -> Alcotest.fail "expected [Failed (Timed_out _); Settled 4]"

let test_pool_truncated_payload_is_a_crash () =
  with_chaos
    (fun ~index ~attempt:_ ->
      if index = 0 then Some Campaign.Pool.Truncate else None)
  @@ fun () ->
  match Campaign.Pool.run ~jobs:2 (fun x -> x + 1) [ 1; 2 ] with
  | [ Campaign.Pool.Failed (Crashed reason); Settled 3 ] ->
    check_contains "diagnostic names the torn payload" "truncated" reason
  | _ -> Alcotest.fail "expected [Failed (Crashed _); Settled 3]"

let test_pool_retry_then_succeed () =
  with_chaos
    (fun ~index ~attempt -> if index = 1 && attempt = 1 then Some Campaign.Pool.Crash else None)
  @@ fun () ->
  let retries = ref [] in
  let policy =
    { Campaign.Pool.timeout = Some 5.0; retries = 2; backoff = 0.01 }
  in
  let outcomes =
    Campaign.Pool.run ~jobs:2 ~policy
      ~on_retry:(fun ~index ~attempt _ -> retries := (index, attempt) :: !retries)
      (fun x -> x * 10)
      [ 1; 2; 3 ]
  in
  Alcotest.(check bool)
    "every job settles despite the first-attempt crash" true
    (outcomes = [ Campaign.Pool.Settled 10; Settled 20; Settled 30 ]);
  Alcotest.(check (list (pair int int)))
    "exactly one retry, of job 1's first attempt" [ (1, 1) ] !retries

let test_pool_gives_up_after_retry_budget () =
  with_chaos
    (fun ~index ~attempt:_ -> if index = 0 then Some Campaign.Pool.Crash else None)
  @@ fun () ->
  let retries = ref 0 in
  let policy = { Campaign.Pool.default_policy with retries = 2; backoff = 0.01 } in
  match
    Campaign.Pool.run ~jobs:2 ~policy
      ~on_retry:(fun ~index:_ ~attempt:_ _ -> incr retries)
      (fun x -> x)
      [ 1; 2 ]
  with
  | [ Campaign.Pool.Failed (Gave_up attempts); Settled 2 ] ->
    Alcotest.(check int) "gave up after the whole budget" 3 attempts;
    Alcotest.(check int) "two retries before giving up" 2 !retries
  | _ -> Alcotest.fail "expected [Failed (Gave_up _); Settled 2]"

let test_pool_serial_retry () =
  let failures = ref 0 in
  let policy = { Campaign.Pool.default_policy with retries = 1; backoff = 0.001 } in
  let outcomes =
    Campaign.Pool.run ~jobs:1 ~policy
      (fun x ->
        if x = 1 && !failures = 0 then begin
          incr failures;
          failwith "flaky"
        end
        else x * 10)
      [ 0; 1 ]
  in
  Alcotest.(check bool)
    "the serial path retries too" true
    (outcomes = [ Campaign.Pool.Settled 0; Settled 10 ])

(* -- JSON round-trips -- *)

let test_json_roundtrip () =
  let document =
    Campaign.Json.Obj
      [
        ("name", Campaign.Json.Str "sweep \"quoted\"\n");
        ("count", Campaign.Json.Num 42.0);
        ("rate", Campaign.Json.Num 0.017);
        ("flags", Campaign.Json.List [ Campaign.Json.Bool true; Campaign.Json.Null ]);
      ]
  in
  let rendered = Campaign.Json.to_string document in
  match Campaign.Json.of_string rendered with
  | Error message -> Alcotest.failf "reparse failed: %s" message
  | Ok reparsed ->
    Alcotest.(check string)
      "print/parse/print is stable" rendered
      (Campaign.Json.to_string reparsed)

let test_result_json_roundtrip () =
  let job = List.hd (Campaign.Sweep.jobs_of_grid (tiny_grid ())) in
  let result = Campaign.Job.run job in
  let json = Campaign.Job.result_to_json result in
  match
    Campaign.Json.of_string (Campaign.Json.pretty json)
    |> Result.map (Campaign.Job.result_of_json job)
  with
  | Error message -> Alcotest.failf "parse failed: %s" message
  | Ok (Error message) -> Alcotest.failf "decode failed: %s" message
  | Ok (Ok decoded) ->
    Alcotest.(check bool)
      "decoded result is structurally identical" true (decoded = result)

(* -- the cache -- *)

let test_cache_hit_is_byte_identical () =
  let cache = temp_cache_dir () in
  let grid = tiny_grid () in
  let cold = Campaign.Sweep.run ~cache ~jobs:1 grid in
  let warm = Campaign.Sweep.run ~cache ~jobs:1 grid in
  Alcotest.(check int) "cold run hits nothing" 0 cold.Campaign.Sweep.cache_hits;
  Alcotest.(check int)
    "warm run hits everything"
    (List.length warm.Campaign.Sweep.results)
    warm.Campaign.Sweep.cache_hits;
  Alcotest.(check int) "warm run executes nothing" 0
    warm.Campaign.Sweep.jobs_executed;
  Alcotest.(check string)
    "cached results render byte-identically"
    (Campaign.Json.to_string (Campaign.Sweep.results_json cold))
    (Campaign.Json.to_string (Campaign.Sweep.results_json warm))

let test_cache_ignores_corrupt_entries () =
  let cache = temp_cache_dir () in
  let job = List.hd (Campaign.Sweep.jobs_of_grid (tiny_grid ())) in
  let path =
    Filename.concat (Campaign.Cache.dir cache) (Campaign.Job.digest job ^ ".json")
  in
  let oc = open_out path in
  output_string oc "{ truncated";
  close_out oc;
  Alcotest.(check bool)
    "corrupt entry is a miss, not an error" true
    (Campaign.Cache.find cache job = None);
  let result = Campaign.Job.run job in
  Campaign.Cache.store cache result;
  Alcotest.(check bool)
    "store repairs the entry" true
    (Campaign.Cache.find cache job = Some result)

(* -- parallel vs serial equivalence -- *)

let test_parallel_matches_serial () =
  let grid = tiny_grid () in
  let serial = Campaign.Sweep.run ~jobs:1 grid in
  let parallel = Campaign.Sweep.run ~jobs:2 grid in
  Alcotest.(check int) "4 seeded jobs" 4
    (List.length serial.Campaign.Sweep.results);
  Alcotest.(check string)
    "2-worker sweep reproduces the serial results"
    (Campaign.Json.to_string (Campaign.Sweep.results_json serial))
    (Campaign.Json.to_string (Campaign.Sweep.results_json parallel));
  Alcotest.(check string)
    "aggregates agree"
    (Campaign.Sweep.report_json { serial with elapsed_seconds = 0.0; workers = 0 })
    (Campaign.Sweep.report_json
       { parallel with elapsed_seconds = 0.0; workers = 0 })

let test_sweep_is_audited () =
  let outcome = Campaign.Sweep.run ~jobs:2 (tiny_grid ()) in
  Alcotest.(check int) "no invariant violations" 0
    (Campaign.Sweep.total_violations outcome);
  List.iter
    (fun r ->
      Alcotest.(check bool) "every job ran under the auditor" true
        (r.Campaign.Job.audit_checks > 0))
    outcome.Campaign.Sweep.results

let test_aggregation () =
  let outcome = Campaign.Sweep.run ~jobs:1 (tiny_grid ~seed_count:3 ()) in
  Alcotest.(check int) "one point per variant" 2
    (List.length outcome.Campaign.Sweep.points);
  List.iter
    (fun point ->
      let goodput = point.Campaign.Sweep.goodput in
      Alcotest.(check int) "three seeds per point" 3 goodput.Stats.Summary.n;
      Alcotest.(check bool) "mean goodput is positive" true
        (goodput.Stats.Summary.mean > 0.0);
      Alcotest.(check bool) "confidence interval is non-negative" true
        (goodput.Stats.Summary.ci95 >= 0.0);
      let jain = point.Campaign.Sweep.jain.Stats.Summary.mean in
      Alcotest.(check bool) "jain index within (0, 1]" true
        (jain > 0.0 && jain <= 1.0))
    outcome.Campaign.Sweep.points

(* -- sweep supervision: quarantine, interruption, journal resume -- *)

let test_sweep_quarantines_failures () =
  with_chaos
    (fun ~index ~attempt:_ -> if index = 0 then Some Campaign.Pool.Crash else None)
  @@ fun () ->
  let outcome = Campaign.Sweep.run ~jobs:2 (tiny_grid ()) in
  Alcotest.(check int) "one job quarantined" 1
    (List.length outcome.Campaign.Sweep.quarantined);
  Alcotest.(check int) "the rest settled" 3
    (List.length outcome.Campaign.Sweep.results);
  Alcotest.(check bool) "not interrupted" false
    outcome.Campaign.Sweep.interrupted;
  let text = Campaign.Sweep.report outcome in
  check_contains "text report has a quarantine table" "quarantined job(s):" text;
  check_contains "the failure is rendered" "crashed: killed by SIGKILL" text;
  check_contains "the summary line counts it" "1 quarantined" text;
  let json = Campaign.Sweep.report_json outcome in
  match Campaign.Json.of_string json with
  | Error message -> Alcotest.failf "report_json unparseable: %s" message
  | Ok parsed ->
    Alcotest.(check (option string))
      "schema is bumped" (Some "rr-sim-sweep/5")
      (Option.bind (Campaign.Json.member "schema" parsed) Campaign.Json.to_str);
    (match
       Option.bind (Campaign.Json.member "quarantined" parsed) Campaign.Json.to_list
     with
    | Some [ entry ] ->
      Alcotest.(check (option string))
        "failure kind is structured" (Some "crashed")
        (Option.bind (Campaign.Json.member "failure" entry) (fun f ->
             Option.bind (Campaign.Json.member "kind" f) Campaign.Json.to_str))
    | _ -> Alcotest.fail "expected exactly one quarantined entry in JSON")

let test_clean_sweep_report_is_unchanged () =
  let outcome = Campaign.Sweep.run ~jobs:2 (tiny_grid ()) in
  let text = Campaign.Sweep.report outcome in
  Alcotest.(check bool) "no quarantine section on a clean sweep" false
    (contains ~needle:"quarantined" text);
  Alcotest.(check bool) "no interruption note on a clean sweep" false
    (contains ~needle:"interrupted" text)

let test_interrupted_sweep_keeps_finished_work () =
  let cache = temp_cache_dir () in
  let stop = ref false in
  let outcome =
    Campaign.Sweep.run ~cache ~jobs:2
      ~stop:(fun () -> !stop)
      ~on_progress:(fun ~completed ~total:_ -> if completed >= 1 then stop := true)
      (tiny_grid ())
  in
  Alcotest.(check bool) "flagged interrupted" true
    outcome.Campaign.Sweep.interrupted;
  Alcotest.(check bool) "some jobs were skipped" true
    (outcome.Campaign.Sweep.skipped > 0);
  let settled = List.length outcome.Campaign.Sweep.results in
  Alcotest.(check bool) "some jobs settled first" true (settled >= 1);
  check_contains "partial summary renders the interruption"
    "re-run with --resume" (Campaign.Sweep.report outcome);
  (* The settled results were stored eagerly, so a follow-up sweep
     serves them from the cache without re-execution. *)
  let warm = Campaign.Sweep.run ~cache ~jobs:2 (tiny_grid ()) in
  Alcotest.(check bool) "finished work survived the interruption" true
    (warm.Campaign.Sweep.cache_hits >= settled);
  Alcotest.(check int) "follow-up completes the campaign" 4
    (List.length warm.Campaign.Sweep.results)

let test_journal_resume_roundtrip () =
  let grid = tiny_grid () in
  let reference = Campaign.Sweep.run ~jobs:2 grid in
  let cache = temp_cache_dir () in
  let path = Filename.concat (Campaign.Cache.dir cache) "journal.jsonl" in
  let sweep = Campaign.Sweep.sweep_digest grid in
  let total = List.length (Campaign.Sweep.jobs_of_grid grid) in
  (* First pass: one worker is SIGKILLed, so its job fails and is
     journalled as such. *)
  let journal = Campaign.Journal.start ~path ~sweep ~total in
  let broken =
    with_chaos
      (fun ~index ~attempt:_ ->
        if index = 2 then Some Campaign.Pool.Crash else None)
      (fun () -> Campaign.Sweep.run ~cache ~journal ~jobs:2 grid)
  in
  Campaign.Journal.close journal;
  Alcotest.(check int) "first pass quarantined one job" 1
    (List.length broken.Campaign.Sweep.quarantined);
  (match Campaign.Journal.load ~path with
  | Error message -> Alcotest.failf "journal unreadable: %s" message
  | Ok snapshot ->
    Alcotest.(check string) "journal names the sweep" sweep
      snapshot.Campaign.Journal.sweep;
    Alcotest.(check int) "journal records the settled jobs" 3
      (List.length snapshot.Campaign.Journal.settled);
    Alcotest.(check int) "journal records the failure" 1
      (List.length snapshot.Campaign.Journal.failed));
  (* Second pass: resume. Only the failed job may execute, and the
     completed campaign must be byte-identical to an uninterrupted
     run. *)
  (match Campaign.Journal.resume ~path ~sweep with
  | Error message -> Alcotest.failf "resume refused: %s" message
  | Ok (journal, previous) ->
    Alcotest.(check int) "resume sees the previous settled set" 3
      (List.length previous.Campaign.Journal.settled);
    let resumed = Campaign.Sweep.run ~cache ~journal ~jobs:2 grid in
    Campaign.Journal.close journal;
    Alcotest.(check int) "resume re-ran only the failed job" 1
      resumed.Campaign.Sweep.jobs_executed;
    Alcotest.(check int) "resume served the rest from cache" 3
      resumed.Campaign.Sweep.cache_hits;
    Alcotest.(check string)
      "resumed campaign is byte-identical to an uninterrupted run"
      (Campaign.Json.to_string (Campaign.Sweep.results_json reference))
      (Campaign.Json.to_string (Campaign.Sweep.results_json resumed));
    (* After the resume the journal shows every job settled. *)
    match Campaign.Journal.load ~path with
    | Error message -> Alcotest.failf "journal unreadable after resume: %s" message
    | Ok snapshot ->
      Alcotest.(check int) "every job now settled" 4
        (List.length snapshot.Campaign.Journal.settled);
      Alcotest.(check int) "no failures remain" 0
        (List.length snapshot.Campaign.Journal.failed));
  (* A journal never grafts onto a different sweep. *)
  let other = tiny_grid ~seed_count:1 () in
  Alcotest.(check bool) "resume refuses a foreign journal" true
    (Result.is_error
       (Campaign.Journal.resume ~path
          ~sweep:(Campaign.Sweep.sweep_digest other)))

(* -- summary statistics -- *)

let test_summary () =
  let s = Stats.Summary.of_list [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 s.Stats.Summary.mean;
  Alcotest.(check (float 1e-6)) "sample stddev" 2.13809 s.Stats.Summary.stddev;
  Alcotest.(check bool) "ci95 = t * s / sqrt n" true
    (Float.abs (s.Stats.Summary.ci95 -. (2.365 *. 2.13809 /. sqrt 8.0)) < 1e-4);
  let single = Stats.Summary.of_list [ 3.0 ] in
  Alcotest.(check (float 0.0)) "n=1 has no spread" 0.0 single.Stats.Summary.ci95;
  Alcotest.(check int) "empty sample" 0 (Stats.Summary.of_list []).Stats.Summary.n

(* -- the experiment registry -- *)

let test_registry_unique_and_complete () =
  let names = Experiments.Registry.names in
  Alcotest.(check int) "every experiment is registered exactly once"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "core artifact %s is registered" name)
        true
        (Experiments.Registry.find name <> None))
    [ "fig5"; "fig6"; "fig7"; "table5"; "ablation"; "sensitivity" ];
  Alcotest.(check bool) "unknown names are not found" true
    (Experiments.Registry.find "no-such-experiment" = None);
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s has a synopsis" e.Experiments.Registry.name)
        true
        (String.length e.Experiments.Registry.synopsis > 0))
    Experiments.Registry.all

let suite =
  [
    ( "campaign",
      [
        Alcotest.test_case "grid expansion" `Quick test_grid_expansion;
        Alcotest.test_case "digest stability" `Quick test_digest_stability;
        Alcotest.test_case "pool order" `Quick test_pool_order_and_results;
        Alcotest.test_case "pool failure" `Quick test_pool_propagates_failure;
        Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "result json roundtrip" `Slow test_result_json_roundtrip;
        Alcotest.test_case "cache byte-identical" `Slow
          test_cache_hit_is_byte_identical;
        Alcotest.test_case "cache corrupt entry" `Slow
          test_cache_ignores_corrupt_entries;
        Alcotest.test_case "parallel = serial" `Slow test_parallel_matches_serial;
        Alcotest.test_case "sweep audited" `Slow test_sweep_is_audited;
        Alcotest.test_case "aggregation" `Slow test_aggregation;
        Alcotest.test_case "chaos spec parsing" `Quick test_chaos_spec_parsing;
        Alcotest.test_case "pool: SIGKILLed worker" `Quick
          test_pool_worker_sigkilled;
        Alcotest.test_case "pool: hung worker times out" `Quick
          test_pool_hung_worker_times_out;
        Alcotest.test_case "pool: truncated payload" `Quick
          test_pool_truncated_payload_is_a_crash;
        Alcotest.test_case "pool: retry then succeed" `Quick
          test_pool_retry_then_succeed;
        Alcotest.test_case "pool: retry budget exhausted" `Quick
          test_pool_gives_up_after_retry_budget;
        Alcotest.test_case "pool: serial retry" `Quick test_pool_serial_retry;
        Alcotest.test_case "sweep quarantine" `Slow
          test_sweep_quarantines_failures;
        Alcotest.test_case "clean sweep report unchanged" `Slow
          test_clean_sweep_report_is_unchanged;
        Alcotest.test_case "interrupted sweep keeps work" `Slow
          test_interrupted_sweep_keeps_finished_work;
        Alcotest.test_case "journal resume roundtrip" `Slow
          test_journal_resume_roundtrip;
        Alcotest.test_case "summary stats" `Quick test_summary;
        Alcotest.test_case "registry" `Quick test_registry_unique_and_complete;
      ] );
  ]
