(* Campaign layer: grid expansion, the fork pool, the content-addressed
   result cache, cross-seed aggregation, and the experiment registry. *)

let tiny_grid ?(seed_count = 2) () =
  (* Small enough to keep the suite fast, lossy enough to exercise the
     recovery paths the metrics summarise. *)
  Campaign.Sweep.grid
    ~variants:Core.Variant.[ Newreno; Rr ]
    ~uniform_losses:[ 0.01 ] ~seed:11L ~seed_count ~duration:3.0 ~flows:2 ()

let temp_cache_dir () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rr-campaign-test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Campaign.Cache.create ~dir ()

(* -- grid expansion and job identity -- *)

let test_grid_expansion () =
  let grid =
    Campaign.Sweep.grid
      ~variants:Core.Variant.[ Reno; Rr ]
      ~gateways:[ Campaign.Job.Droptail 8; Campaign.Job.Red 25 ]
      ~uniform_losses:[ 0.0; 0.02 ] ~ack_losses:[ 0.0 ] ~seed_count:3 ()
  in
  let jobs = Campaign.Sweep.jobs_of_grid grid in
  Alcotest.(check int) "cartesian product size" (2 * 2 * 2 * 3)
    (List.length jobs);
  let digests = List.map Campaign.Job.digest jobs in
  Alcotest.(check int) "digests are pairwise distinct"
    (List.length jobs)
    (List.length (List.sort_uniq compare digests))

let test_digest_stability () =
  let job =
    {
      Campaign.Job.variant = Core.Variant.Rr;
      gateway = Campaign.Job.Droptail 8;
      uniform_loss = 0.02;
      ack_loss = 0.0;
      reorder = 0.0;
      flap_period = 0.0;
      cbr_share = 0.0;
      seed = 7L;
      duration = 20.0;
      flows = 2;
      rwnd = 20;
    }
  in
  Alcotest.(check string)
    "equal jobs hash equally" (Campaign.Job.digest job)
    (Campaign.Job.digest { job with seed = 7L });
  Alcotest.(check bool)
    "the seed is part of the key" true
    (Campaign.Job.digest job <> Campaign.Job.digest { job with seed = 8L });
  Alcotest.(check bool)
    "the gateway is part of the key" true
    (Campaign.Job.digest job
    <> Campaign.Job.digest { job with gateway = Campaign.Job.Red 8 })

(* -- the fork pool -- *)

let test_pool_order_and_results () =
  let inputs = List.init 17 Fun.id in
  let expected = List.map (fun x -> x * x) inputs in
  Alcotest.(check (list int))
    "parallel map preserves input order" expected
    (Campaign.Pool.map ~jobs:4 (fun x -> x * x) inputs);
  Alcotest.(check (list int))
    "serial fallback agrees" expected
    (Campaign.Pool.map ~jobs:1 (fun x -> x * x) inputs)

let test_pool_propagates_failure () =
  Alcotest.check_raises "a failing worker fails the batch"
    (Failure "campaign worker: Failure(\"boom\")") (fun () ->
      ignore
        (Campaign.Pool.map ~jobs:2
           (fun x -> if x = 2 then failwith "boom" else x)
           [ 0; 1; 2; 3 ]))

(* -- JSON round-trips -- *)

let test_json_roundtrip () =
  let document =
    Campaign.Json.Obj
      [
        ("name", Campaign.Json.Str "sweep \"quoted\"\n");
        ("count", Campaign.Json.Num 42.0);
        ("rate", Campaign.Json.Num 0.017);
        ("flags", Campaign.Json.List [ Campaign.Json.Bool true; Campaign.Json.Null ]);
      ]
  in
  let rendered = Campaign.Json.to_string document in
  match Campaign.Json.of_string rendered with
  | Error message -> Alcotest.failf "reparse failed: %s" message
  | Ok reparsed ->
    Alcotest.(check string)
      "print/parse/print is stable" rendered
      (Campaign.Json.to_string reparsed)

let test_result_json_roundtrip () =
  let job = List.hd (Campaign.Sweep.jobs_of_grid (tiny_grid ())) in
  let result = Campaign.Job.run job in
  let json = Campaign.Job.result_to_json result in
  match
    Campaign.Json.of_string (Campaign.Json.pretty json)
    |> Result.map (Campaign.Job.result_of_json job)
  with
  | Error message -> Alcotest.failf "parse failed: %s" message
  | Ok (Error message) -> Alcotest.failf "decode failed: %s" message
  | Ok (Ok decoded) ->
    Alcotest.(check bool)
      "decoded result is structurally identical" true (decoded = result)

(* -- the cache -- *)

let test_cache_hit_is_byte_identical () =
  let cache = temp_cache_dir () in
  let grid = tiny_grid () in
  let cold = Campaign.Sweep.run ~cache ~jobs:1 grid in
  let warm = Campaign.Sweep.run ~cache ~jobs:1 grid in
  Alcotest.(check int) "cold run hits nothing" 0 cold.Campaign.Sweep.cache_hits;
  Alcotest.(check int)
    "warm run hits everything"
    (List.length warm.Campaign.Sweep.results)
    warm.Campaign.Sweep.cache_hits;
  Alcotest.(check int) "warm run executes nothing" 0
    warm.Campaign.Sweep.jobs_executed;
  Alcotest.(check string)
    "cached results render byte-identically"
    (Campaign.Json.to_string (Campaign.Sweep.results_json cold))
    (Campaign.Json.to_string (Campaign.Sweep.results_json warm))

let test_cache_ignores_corrupt_entries () =
  let cache = temp_cache_dir () in
  let job = List.hd (Campaign.Sweep.jobs_of_grid (tiny_grid ())) in
  let path =
    Filename.concat (Campaign.Cache.dir cache) (Campaign.Job.digest job ^ ".json")
  in
  let oc = open_out path in
  output_string oc "{ truncated";
  close_out oc;
  Alcotest.(check bool)
    "corrupt entry is a miss, not an error" true
    (Campaign.Cache.find cache job = None);
  let result = Campaign.Job.run job in
  Campaign.Cache.store cache result;
  Alcotest.(check bool)
    "store repairs the entry" true
    (Campaign.Cache.find cache job = Some result)

(* -- parallel vs serial equivalence -- *)

let test_parallel_matches_serial () =
  let grid = tiny_grid () in
  let serial = Campaign.Sweep.run ~jobs:1 grid in
  let parallel = Campaign.Sweep.run ~jobs:2 grid in
  Alcotest.(check int) "4 seeded jobs" 4
    (List.length serial.Campaign.Sweep.results);
  Alcotest.(check string)
    "2-worker sweep reproduces the serial results"
    (Campaign.Json.to_string (Campaign.Sweep.results_json serial))
    (Campaign.Json.to_string (Campaign.Sweep.results_json parallel));
  Alcotest.(check string)
    "aggregates agree"
    (Campaign.Sweep.report_json { serial with elapsed_seconds = 0.0; workers = 0 })
    (Campaign.Sweep.report_json
       { parallel with elapsed_seconds = 0.0; workers = 0 })

let test_sweep_is_audited () =
  let outcome = Campaign.Sweep.run ~jobs:2 (tiny_grid ()) in
  Alcotest.(check int) "no invariant violations" 0
    (Campaign.Sweep.total_violations outcome);
  List.iter
    (fun r ->
      Alcotest.(check bool) "every job ran under the auditor" true
        (r.Campaign.Job.audit_checks > 0))
    outcome.Campaign.Sweep.results

let test_aggregation () =
  let outcome = Campaign.Sweep.run ~jobs:1 (tiny_grid ~seed_count:3 ()) in
  Alcotest.(check int) "one point per variant" 2
    (List.length outcome.Campaign.Sweep.points);
  List.iter
    (fun point ->
      let goodput = point.Campaign.Sweep.goodput in
      Alcotest.(check int) "three seeds per point" 3 goodput.Stats.Summary.n;
      Alcotest.(check bool) "mean goodput is positive" true
        (goodput.Stats.Summary.mean > 0.0);
      Alcotest.(check bool) "confidence interval is non-negative" true
        (goodput.Stats.Summary.ci95 >= 0.0);
      let jain = point.Campaign.Sweep.jain.Stats.Summary.mean in
      Alcotest.(check bool) "jain index within (0, 1]" true
        (jain > 0.0 && jain <= 1.0))
    outcome.Campaign.Sweep.points

(* -- summary statistics -- *)

let test_summary () =
  let s = Stats.Summary.of_list [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 s.Stats.Summary.mean;
  Alcotest.(check (float 1e-6)) "sample stddev" 2.13809 s.Stats.Summary.stddev;
  Alcotest.(check bool) "ci95 = t * s / sqrt n" true
    (Float.abs (s.Stats.Summary.ci95 -. (2.365 *. 2.13809 /. sqrt 8.0)) < 1e-4);
  let single = Stats.Summary.of_list [ 3.0 ] in
  Alcotest.(check (float 0.0)) "n=1 has no spread" 0.0 single.Stats.Summary.ci95;
  Alcotest.(check int) "empty sample" 0 (Stats.Summary.of_list []).Stats.Summary.n

(* -- the experiment registry -- *)

let test_registry_unique_and_complete () =
  let names = Experiments.Registry.names in
  Alcotest.(check int) "every experiment is registered exactly once"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "core artifact %s is registered" name)
        true
        (Experiments.Registry.find name <> None))
    [ "fig5"; "fig6"; "fig7"; "table5"; "ablation"; "sensitivity" ];
  Alcotest.(check bool) "unknown names are not found" true
    (Experiments.Registry.find "no-such-experiment" = None);
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s has a synopsis" e.Experiments.Registry.name)
        true
        (String.length e.Experiments.Registry.synopsis > 0))
    Experiments.Registry.all

let suite =
  [
    ( "campaign",
      [
        Alcotest.test_case "grid expansion" `Quick test_grid_expansion;
        Alcotest.test_case "digest stability" `Quick test_digest_stability;
        Alcotest.test_case "pool order" `Quick test_pool_order_and_results;
        Alcotest.test_case "pool failure" `Quick test_pool_propagates_failure;
        Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "result json roundtrip" `Slow test_result_json_roundtrip;
        Alcotest.test_case "cache byte-identical" `Slow
          test_cache_hit_is_byte_identical;
        Alcotest.test_case "cache corrupt entry" `Slow
          test_cache_ignores_corrupt_entries;
        Alcotest.test_case "parallel = serial" `Slow test_parallel_matches_serial;
        Alcotest.test_case "sweep audited" `Slow test_sweep_is_audited;
        Alcotest.test_case "aggregation" `Slow test_aggregation;
        Alcotest.test_case "summary stats" `Quick test_summary;
        Alcotest.test_case "registry" `Quick test_registry_unique_and_complete;
      ] );
  ]
