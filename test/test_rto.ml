(* RTT estimation and retransmission-timeout tests (Jacobson/Karels). *)

let make ?tick () = Tcp.Rto.create ~min_rto:1.0 ~max_rto:64.0 ~initial_rto:3.0 ?tick ()

let close = Alcotest.(check (float 1e-9))

let test_initial () =
  let rto = make () in
  close "initial rto" 3.0 (Tcp.Rto.value rto);
  Alcotest.(check bool) "no srtt" true (Tcp.Rto.srtt rto = None)

let test_first_sample () =
  let rto = make () in
  Tcp.Rto.sample rto 0.2;
  (match Tcp.Rto.srtt rto with
  | Some srtt -> close "srtt = m" 0.2 srtt
  | None -> Alcotest.fail "srtt");
  (match Tcp.Rto.rttvar rto with
  | Some rttvar -> close "rttvar = m/2" 0.1 rttvar
  | None -> Alcotest.fail "rttvar");
  (* srtt + 4*rttvar = 0.6 clamps up to min_rto. *)
  close "clamped to min" 1.0 (Tcp.Rto.value rto)

let test_jacobson_update () =
  let rto = make () in
  Tcp.Rto.sample rto 0.2;
  Tcp.Rto.sample rto 0.4;
  (* srtt = 0.2 + (0.4-0.2)/8 = 0.225; rttvar = 0.1 + (0.2-0.1)/4 = 0.125 *)
  (match Tcp.Rto.srtt rto with
  | Some srtt -> close "srtt" 0.225 srtt
  | None -> Alcotest.fail "srtt");
  match Tcp.Rto.rttvar rto with
  | Some rttvar -> close "rttvar" 0.125 rttvar
  | None -> Alcotest.fail "rttvar"

let test_value_above_min () =
  let rto = make () in
  Tcp.Rto.sample rto 2.0;
  (* 2.0 + 4*1.0 = 6.0, well above min. *)
  close "unclamped" 6.0 (Tcp.Rto.value rto)

let test_backoff () =
  let rto = make () in
  Tcp.Rto.sample rto 0.2;
  close "base" 1.0 (Tcp.Rto.value rto);
  Tcp.Rto.backoff rto;
  close "doubled" 2.0 (Tcp.Rto.value rto);
  Tcp.Rto.backoff rto;
  close "doubled again" 4.0 (Tcp.Rto.value rto);
  for _ = 1 to 20 do
    Tcp.Rto.backoff rto
  done;
  close "clamped to max" 64.0 (Tcp.Rto.value rto)

let test_sample_resets_backoff () =
  let rto = make () in
  Tcp.Rto.sample rto 0.2;
  Tcp.Rto.backoff rto;
  Tcp.Rto.backoff rto;
  Tcp.Rto.sample rto 0.2;
  close "backoff cleared" 1.0 (Tcp.Rto.value rto)

let test_invalid () =
  Alcotest.check_raises "bounds" (Invalid_argument "Rto.create: inconsistent bounds")
    (fun () ->
      ignore (Tcp.Rto.create ~min_rto:2.0 ~max_rto:1.0 ~initial_rto:2.0 ()));
  let rto = make () in
  Alcotest.check_raises "negative sample"
    (Invalid_argument "Rto.sample: negative RTT") (fun () ->
      Tcp.Rto.sample rto (-0.1))

let test_initial_bounds () =
  (* The seed silently accepted initial_rto above the ceiling, producing
     a timeout that value's clamp then contradicted. Both edges of the
     valid range are fine; past the ceiling is rejected. *)
  Alcotest.check_raises "initial above max is rejected"
    (Invalid_argument "Rto.create: inconsistent bounds") (fun () ->
      ignore (Tcp.Rto.create ~min_rto:1.0 ~max_rto:2.0 ~initial_rto:3.0 ()));
  let at_max = Tcp.Rto.create ~min_rto:1.0 ~max_rto:2.0 ~initial_rto:2.0 () in
  close "initial = max is accepted" 2.0 (Tcp.Rto.value at_max);
  let at_min = Tcp.Rto.create ~min_rto:1.0 ~max_rto:2.0 ~initial_rto:1.0 () in
  close "initial = min is accepted" 1.0 (Tcp.Rto.value at_min)

let test_tick_quantization () =
  let rto = make ~tick:0.5 () in
  (* Samples land on tick boundaries: 0.2 rounds to one tick (0.5). *)
  Tcp.Rto.sample rto 0.2;
  (match Tcp.Rto.srtt rto with
  | Some srtt -> close "sample quantized up" 0.5 srtt
  | None -> Alcotest.fail "srtt");
  (* 0.7 rounds to 0.5; srtt update uses the quantized value. *)
  let rto2 = make ~tick:0.5 () in
  Tcp.Rto.sample rto2 0.7;
  (match Tcp.Rto.srtt rto2 with
  | Some srtt -> close "nearest tick" 0.5 srtt
  | None -> Alcotest.fail "srtt");
  (* The timeout itself lands on tick boundaries. *)
  let v = Tcp.Rto.value rto in
  close "value on a boundary" 0.0 (Float.rem v 0.5);
  (* tick = 0 leaves samples exact. *)
  let exact = make () in
  Tcp.Rto.sample exact 0.2;
  match Tcp.Rto.srtt exact with
  | Some srtt -> close "exact clock" 0.2 srtt
  | None -> Alcotest.fail "srtt"

let test_tick_invalid () =
  Alcotest.check_raises "negative tick"
    (Invalid_argument "Rto.create: negative tick") (fun () ->
      ignore (make ~tick:(-0.1) ()))

let test_tick_respects_max () =
  (* max_rto off a tick boundary: quantization used to round the
     clamped value back up past the ceiling (1.2 -> 1.5). One backoff
     takes the base 1.0 to 2.0, the ceiling clamps it to 1.2, and the
     tick must not round that back up. *)
  let rto =
    Tcp.Rto.create ~min_rto:0.5 ~max_rto:1.2 ~initial_rto:1.0 ~tick:0.5 ()
  in
  Tcp.Rto.backoff rto;
  close "capped, not re-rounded" 1.2 (Tcp.Rto.value rto);
  (* Further backoff pressure cannot push it over either. *)
  for _ = 1 to 10 do
    Tcp.Rto.backoff rto
  done;
  Alcotest.(check bool) "still capped" true (Tcp.Rto.value rto <= 1.2)

(* -- the pluggable estimator family (Jain, cs/9809097) -- *)

let fine ?tick estimator =
  Tcp.Rto.create ~min_rto:0.2 ~max_rto:8.0 ~initial_rto:0.5 ?tick ~estimator ()

let test_estimator_names () =
  List.iter
    (fun e ->
      match Tcp.Rto.estimator_of_string (Tcp.Rto.estimator_name e) with
      | Ok round -> Alcotest.(check bool) "name round-trips" true (round = e)
      | Error m -> Alcotest.fail m)
    Tcp.Rto.estimators;
  Alcotest.(check bool) "jk alias" true
    (Tcp.Rto.estimator_of_string "jk" = Ok Tcp.Rto.Jacobson);
  Alcotest.(check bool) "mean alias" true
    (Tcp.Rto.estimator_of_string "mean" = Ok Tcp.Rto.Rfc793);
  Alcotest.(check bool) "unknown names are rejected" true
    (Result.is_error (Tcp.Rto.estimator_of_string "vegas"));
  Alcotest.(check bool) "default is jacobson" true
    (Tcp.Rto.estimator (make ()) = Tcp.Rto.Jacobson)

let test_fixed_never_adapts () =
  let rto = fine Tcp.Rto.Fixed in
  List.iter (fun s -> Tcp.Rto.sample rto s) [ 0.3; 1.0; 2.5; 0.4 ];
  (* The prediction stays pinned at the initial RTO whatever arrives —
     though samples still keep srtt bookkeeping and reset backoff. *)
  close "fixed prediction" 0.5 (Tcp.Rto.value rto);
  Alcotest.(check bool) "srtt still tracked" true (Tcp.Rto.srtt rto <> None);
  Tcp.Rto.backoff rto;
  close "backoff still applies" 1.0 (Tcp.Rto.value rto);
  Tcp.Rto.sample rto 0.3;
  close "sample still resets backoff" 0.5 (Tcp.Rto.value rto)

let test_rfc793_is_twice_srtt () =
  let rto = fine Tcp.Rto.Rfc793 in
  Tcp.Rto.sample rto 0.4;
  Tcp.Rto.sample rto 0.8;
  (* srtt = 0.4 + (0.8-0.4)/8 = 0.45; RTO = 2*srtt, no variance term. *)
  close "2 * srtt" 0.9 (Tcp.Rto.value rto)

let test_agile_gains () =
  let rto = fine Tcp.Rto.Agile in
  Tcp.Rto.sample rto 0.2;
  Tcp.Rto.sample rto 0.4;
  (* srtt = 0.2 + (0.4-0.2)/4 = 0.25; rttvar = 0.1 + (0.2-0.1)/2 = 0.15 *)
  (match Tcp.Rto.srtt rto with
  | Some srtt -> close "agile srtt gain 1/4" 0.25 srtt
  | None -> Alcotest.fail "srtt");
  (match Tcp.Rto.rttvar rto with
  | Some rttvar -> close "agile rttvar gain 1/2" 0.15 rttvar
  | None -> Alcotest.fail "rttvar");
  close "srtt + 4*rttvar" 0.85 (Tcp.Rto.value rto)

let test_fine_timeout () =
  (* No estimate yet: the fine timeout is the initial RTO. *)
  let rto = fine Tcp.Rto.Jacobson in
  close "pre-sample fine timeout" 0.5 (Tcp.Rto.fine_timeout rto);
  (* With an estimate the raw prediction passes through un-floored
     (0.18 + 4*0.09 = 0.54... below min_rto would too) and unbacked-off. *)
  Tcp.Rto.sample rto 0.1;
  close "raw prediction, no min_rto floor" 0.3 (Tcp.Rto.fine_timeout rto);
  Tcp.Rto.backoff rto;
  close "backoff does not leak into the fine timer" 0.3
    (Tcp.Rto.fine_timeout rto);
  (* A coarse clock quantizes it up; the ceiling still wins. *)
  let ticked = fine ~tick:0.5 Tcp.Rto.Jacobson in
  Tcp.Rto.sample ticked 0.6;
  (* sample quantizes to 0.5: prediction 0.5 + 4*0.25 = 1.5, on-tick. *)
  close "tick-aligned" 1.5 (Tcp.Rto.fine_timeout ticked);
  let capped =
    Tcp.Rto.create ~min_rto:0.2 ~max_rto:1.2 ~initial_rto:0.5 ~tick:0.5 ()
  in
  Tcp.Rto.sample capped 0.6;
  close "ceiling beats the tick round-up" 1.2 (Tcp.Rto.fine_timeout capped)

let prop_rto_bounded =
  QCheck2.Test.make ~name:"rto stays within [min,max] for every estimator"
    QCheck2.Gen.(
      triple
        (list (float_bound_inclusive 10.0))
        (oneofl [ 0.0; 0.1; 0.3; 0.5; 0.7 ])
        (oneofl Tcp.Rto.estimators))
    (fun (samples, tick, estimator) ->
      let rto =
        Tcp.Rto.create ~min_rto:1.0 ~max_rto:64.0 ~initial_rto:3.0 ~tick
          ~estimator ()
      in
      List.iter (fun s -> Tcp.Rto.sample rto s) samples;
      let v = Tcp.Rto.value rto in
      v >= 1.0 && v <= 64.0)

let suite =
  [
    ( "rto",
      [
        Alcotest.test_case "initial" `Quick test_initial;
        Alcotest.test_case "first sample" `Quick test_first_sample;
        Alcotest.test_case "jacobson update" `Quick test_jacobson_update;
        Alcotest.test_case "value above min" `Quick test_value_above_min;
        Alcotest.test_case "backoff" `Quick test_backoff;
        Alcotest.test_case "sample resets backoff" `Quick test_sample_resets_backoff;
        Alcotest.test_case "invalid" `Quick test_invalid;
        Alcotest.test_case "initial bounds" `Quick test_initial_bounds;
        Alcotest.test_case "tick quantization" `Quick test_tick_quantization;
        Alcotest.test_case "tick invalid" `Quick test_tick_invalid;
        Alcotest.test_case "tick respects max" `Quick test_tick_respects_max;
        Alcotest.test_case "estimator names" `Quick test_estimator_names;
        Alcotest.test_case "fixed never adapts" `Quick test_fixed_never_adapts;
        Alcotest.test_case "rfc793 = 2*srtt" `Quick test_rfc793_is_twice_srtt;
        Alcotest.test_case "agile gains" `Quick test_agile_gains;
        Alcotest.test_case "fine timeout" `Quick test_fine_timeout;
        QCheck_alcotest.to_alcotest prop_rto_bounded;
      ] );
  ]
