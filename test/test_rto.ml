(* RTT estimation and retransmission-timeout tests (Jacobson/Karels). *)

let make ?tick () = Tcp.Rto.create ~min_rto:1.0 ~max_rto:64.0 ~initial_rto:3.0 ?tick ()

let close = Alcotest.(check (float 1e-9))

let test_initial () =
  let rto = make () in
  close "initial rto" 3.0 (Tcp.Rto.value rto);
  Alcotest.(check bool) "no srtt" true (Tcp.Rto.srtt rto = None)

let test_first_sample () =
  let rto = make () in
  Tcp.Rto.sample rto 0.2;
  (match Tcp.Rto.srtt rto with
  | Some srtt -> close "srtt = m" 0.2 srtt
  | None -> Alcotest.fail "srtt");
  (match Tcp.Rto.rttvar rto with
  | Some rttvar -> close "rttvar = m/2" 0.1 rttvar
  | None -> Alcotest.fail "rttvar");
  (* srtt + 4*rttvar = 0.6 clamps up to min_rto. *)
  close "clamped to min" 1.0 (Tcp.Rto.value rto)

let test_jacobson_update () =
  let rto = make () in
  Tcp.Rto.sample rto 0.2;
  Tcp.Rto.sample rto 0.4;
  (* srtt = 0.2 + (0.4-0.2)/8 = 0.225; rttvar = 0.1 + (0.2-0.1)/4 = 0.125 *)
  (match Tcp.Rto.srtt rto with
  | Some srtt -> close "srtt" 0.225 srtt
  | None -> Alcotest.fail "srtt");
  match Tcp.Rto.rttvar rto with
  | Some rttvar -> close "rttvar" 0.125 rttvar
  | None -> Alcotest.fail "rttvar"

let test_value_above_min () =
  let rto = make () in
  Tcp.Rto.sample rto 2.0;
  (* 2.0 + 4*1.0 = 6.0, well above min. *)
  close "unclamped" 6.0 (Tcp.Rto.value rto)

let test_backoff () =
  let rto = make () in
  Tcp.Rto.sample rto 0.2;
  close "base" 1.0 (Tcp.Rto.value rto);
  Tcp.Rto.backoff rto;
  close "doubled" 2.0 (Tcp.Rto.value rto);
  Tcp.Rto.backoff rto;
  close "doubled again" 4.0 (Tcp.Rto.value rto);
  for _ = 1 to 20 do
    Tcp.Rto.backoff rto
  done;
  close "clamped to max" 64.0 (Tcp.Rto.value rto)

let test_sample_resets_backoff () =
  let rto = make () in
  Tcp.Rto.sample rto 0.2;
  Tcp.Rto.backoff rto;
  Tcp.Rto.backoff rto;
  Tcp.Rto.sample rto 0.2;
  close "backoff cleared" 1.0 (Tcp.Rto.value rto)

let test_invalid () =
  Alcotest.check_raises "bounds" (Invalid_argument "Rto.create: inconsistent bounds")
    (fun () ->
      ignore (Tcp.Rto.create ~min_rto:2.0 ~max_rto:1.0 ~initial_rto:2.0 ()));
  let rto = make () in
  Alcotest.check_raises "negative sample"
    (Invalid_argument "Rto.sample: negative RTT") (fun () ->
      Tcp.Rto.sample rto (-0.1))

let test_tick_quantization () =
  let rto = make ~tick:0.5 () in
  (* Samples land on tick boundaries: 0.2 rounds to one tick (0.5). *)
  Tcp.Rto.sample rto 0.2;
  (match Tcp.Rto.srtt rto with
  | Some srtt -> close "sample quantized up" 0.5 srtt
  | None -> Alcotest.fail "srtt");
  (* 0.7 rounds to 0.5; srtt update uses the quantized value. *)
  let rto2 = make ~tick:0.5 () in
  Tcp.Rto.sample rto2 0.7;
  (match Tcp.Rto.srtt rto2 with
  | Some srtt -> close "nearest tick" 0.5 srtt
  | None -> Alcotest.fail "srtt");
  (* The timeout itself lands on tick boundaries. *)
  let v = Tcp.Rto.value rto in
  close "value on a boundary" 0.0 (Float.rem v 0.5);
  (* tick = 0 leaves samples exact. *)
  let exact = make () in
  Tcp.Rto.sample exact 0.2;
  match Tcp.Rto.srtt exact with
  | Some srtt -> close "exact clock" 0.2 srtt
  | None -> Alcotest.fail "srtt"

let test_tick_invalid () =
  Alcotest.check_raises "negative tick"
    (Invalid_argument "Rto.create: negative tick") (fun () ->
      ignore (make ~tick:(-0.1) ()))

let test_tick_respects_max () =
  (* max_rto off a tick boundary: quantization used to round the
     clamped value back up past the ceiling (1.2 -> 1.5). *)
  let rto =
    Tcp.Rto.create ~min_rto:0.5 ~max_rto:1.2 ~initial_rto:3.0 ~tick:0.5 ()
  in
  close "capped, not re-rounded" 1.2 (Tcp.Rto.value rto);
  (* Backoff pressure cannot push it over either. *)
  for _ = 1 to 10 do
    Tcp.Rto.backoff rto
  done;
  Alcotest.(check bool) "still capped" true (Tcp.Rto.value rto <= 1.2)

let prop_rto_bounded =
  QCheck2.Test.make ~name:"rto stays within [min,max]"
    QCheck2.Gen.(
      pair
        (list (float_bound_inclusive 10.0))
        (oneofl [ 0.0; 0.1; 0.3; 0.5; 0.7 ]))
    (fun (samples, tick) ->
      let rto = make ~tick () in
      List.iter (fun s -> Tcp.Rto.sample rto s) samples;
      let v = Tcp.Rto.value rto in
      v >= 1.0 && v <= 64.0)

let suite =
  [
    ( "rto",
      [
        Alcotest.test_case "initial" `Quick test_initial;
        Alcotest.test_case "first sample" `Quick test_first_sample;
        Alcotest.test_case "jacobson update" `Quick test_jacobson_update;
        Alcotest.test_case "value above min" `Quick test_value_above_min;
        Alcotest.test_case "backoff" `Quick test_backoff;
        Alcotest.test_case "sample resets backoff" `Quick test_sample_resets_backoff;
        Alcotest.test_case "invalid" `Quick test_invalid;
        Alcotest.test_case "tick quantization" `Quick test_tick_quantization;
        Alcotest.test_case "tick invalid" `Quick test_tick_invalid;
        Alcotest.test_case "tick respects max" `Quick test_tick_respects_max;
        QCheck_alcotest.to_alcotest prop_rto_bounded;
      ] );
  ]
