(* Quickstart: one Robust-Recovery TCP flow over the paper's dumbbell.

   Builds the Table 3 topology (0.8 Mbps bottleneck, ~200 ms RTT,
   8-packet drop-tail gateway), attaches an RR sender and a standard
   receiver, runs a persistent FTP for 20 simulated seconds, and prints
   what happened.

     dune exec examples/quickstart.exe *)

let () =
  let engine = Sim.Engine.create () in
  let config = Net.Dumbbell.paper_config ~flows:1 in
  let topology =
    Net.Dumbbell.create ~engine ~config ~rng:(Sim.Rng.create 1L) ()
  in
  (* Default parameters: the advertised window is effectively unbounded,
     so slow start overshoots the 28-packet pipe and RR gets real bursty
     losses to recover from. *)
  let params = Tcp.Params.default in

  (* Sender: the paper's contribution. Its [emit] injects data packets
     at host S1; ACKs come back through [on_ack]. *)
  let agent =
    Core.Rr.create ~engine ~params ~flow:0
      ~emit:(Net.Dumbbell.inject_data topology ~flow:0)
      ()
  in
  let receiver =
    Tcp.Receiver.create ~engine ~flow:0
      ~emit:(Net.Dumbbell.inject_ack topology ~flow:0)
      ()
  in
  Net.Dumbbell.on_data topology ~flow:0 (Tcp.Receiver.deliver receiver);
  Net.Dumbbell.on_ack topology ~flow:0 agent.Tcp.Agent.deliver_ack;

  let trace = Stats.Flow_trace.attach agent in
  Workload.Ftp.persistent ~engine ~agent ~at:0.0;
  Sim.Engine.run_until engine ~time:20.0;

  let base = agent.Tcp.Agent.base in
  let goodput =
    Stats.Metrics.effective_throughput_bps trace ~mss:params.Tcp.Params.mss
      ~t0:0.0 ~t1:20.0
  in
  Format.printf "RR flow over %.1f Mbps bottleneck, 20 s:@."
    (config.Net.Dumbbell.bottleneck_bandwidth_bps /. 1e6);
  Format.printf "  goodput        %.1f Kbps (%.0f%% of the link)@."
    (goodput /. 1000.0)
    (100.0 *. goodput /. config.Net.Dumbbell.bottleneck_bandwidth_bps);
  Format.printf "  segments acked %d@." (base.Tcp.Sender_common.una + 1);
  Format.printf "  counters       %a@." Tcp.Counters.pp
    base.Tcp.Sender_common.counters;
  Format.printf "  drops at gw    %d@." (Net.Dumbbell.drops_of_flow topology 0);
  Format.printf "  recoveries     %d entered, %d clean exits@."
    (List.length trace.Stats.Flow_trace.recovery_entries)
    (List.length trace.Stats.Flow_trace.recovery_exits)
