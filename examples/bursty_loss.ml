(* Anatomy of one Robust-Recovery episode.

   Forces a 4-packet loss burst inside one window (like the paper's
   Figure 3 walk-through, where segments 4, 5, 7 and 8 of a window are
   dropped) and narrates the retreat and probe sub-phases as they
   happen: when recovery is entered, how actnum/ndup evolve at each
   partial-ACK RTT boundary, and the state of cwnd at exit.

     dune exec examples/bursty_loss.exe *)

let dropped_segments = [ 35; 36; 38; 39 ]

let () =
  let engine = Sim.Engine.create () in
  let config = Net.Dumbbell.paper_config ~flows:1 in
  let params =
    { Tcp.Params.default with initial_ssthresh = 16.0; rwnd = 20 }
  in
  let rules =
    List.map
      (fun seq -> { Net.Loss.flow = 0; seq; occurrence = 1 })
      dropped_segments
  in
  let topology_cell = ref None in
  let wrap_bottleneck next =
    Net.Loss.drop_list ~rules
      ~on_drop:(fun packet ->
        Format.printf "%.3f  x  segment %d dropped at the gateway@."
          (Sim.Engine.now engine)
          (Net.Packet.seq_exn packet);
        Option.iter
          (fun topology -> Net.Dumbbell.count_drop topology packet)
          !topology_cell)
      next
  in
  let topology =
    Net.Dumbbell.create ~engine ~config ~rng:(Sim.Rng.create 5L)
      ~wrap_bottleneck ()
  in
  topology_cell := Some topology;
  let agent, handle =
    Core.Rr.create_with_handle ~engine ~params ~flow:0
      ~emit:(Net.Dumbbell.inject_data topology ~flow:0)
      ()
  in
  let receiver =
    Tcp.Receiver.create ~engine ~flow:0
      ~emit:(Net.Dumbbell.inject_ack topology ~flow:0)
      ()
  in
  Net.Dumbbell.on_data topology ~flow:0 (Tcp.Receiver.deliver receiver);

  (* Narrate by observing the recovery state around every delivered
     ACK. *)
  let base = agent.Tcp.Agent.base in
  let previous = ref None in
  let describe (view : Core.Rr.probe_view) =
    match view.Core.Rr.stage with
    | Core.Rr.Retreat ->
      Printf.sprintf "retreat: ndup=%d (1 new segment per 2 dup ACKs)"
        view.Core.Rr.ndup
    | Core.Rr.Probe ->
      Printf.sprintf "probe: actnum=%d ndup=%d exit_point=%d further=%d"
        view.Core.Rr.actnum view.Core.Rr.ndup view.Core.Rr.exit_point
        view.Core.Rr.further_losses
  in
  Net.Dumbbell.on_ack topology ~flow:0 (fun packet ->
      agent.Tcp.Agent.deliver_ack packet;
      let now = Sim.Engine.now engine in
      (match (Core.Rr.inspect handle, !previous) with
      | Some _, None ->
        Format.printf
          "%.3f  >> fast retransmit: recovery entered (cwnd frozen at %.1f, \
           ssthresh -> %.1f)@."
          now
          (Tcp.Sender_common.cwnd base)
          (Tcp.Sender_common.ssthresh base)
      | Some view, Some old when describe view <> describe old ->
        Format.printf "%.3f     %s@." now (describe view)
      | Some _, Some _ -> ()
      | None, Some _ ->
        Format.printf
          "%.3f  << recovery exited: cwnd <- actnum = %.1f segments, back to \
           congestion avoidance@."
          now
          (Tcp.Sender_common.cwnd base)
      | None, None -> ());
      previous := Core.Rr.inspect handle);

  Workload.Ftp.persistent ~engine ~agent ~at:0.0;
  Sim.Engine.run_until engine ~time:6.0;

  Format.printf "@.summary: %a; %d clean recovery exit(s)@." Tcp.Counters.pp
    base.Tcp.Sender_common.counters
    (Core.Rr.recoveries handle)
