(* Observability tour: traces, queue monitoring and the ns-2-style
   event dump.

   Runs two RR flows into a tight drop-tail bottleneck with the queue
   monitor on, then shows the three observation surfaces the library
   offers: per-flow metrics, the bottleneck-queue time series (as an
   ASCII plot), and the first lines of the ns-2-style tracefile.

     dune exec examples/observability.exe *)

let duration = 12.0

let () =
  let config =
    {
      (Net.Dumbbell.paper_config ~flows:2) with
      gateway = Net.Dumbbell.Droptail { capacity = 10 };
    }
  in
  let t =
    Experiments.Scenario.run
      (Experiments.Scenario.make ~topology:(Experiments.Scenario.dumbbell config)
         ~flows:
           [
             Experiments.Scenario.flow Core.Variant.Rr;
             {
               (Experiments.Scenario.flow Core.Variant.Rr) with
               Experiments.Scenario.start = 0.5;
             };
           ]
         ~params:{ Tcp.Params.default with rwnd = 20 }
         ~duration ~monitor_queue:0.05 ())
  in

  (* 1. Per-flow metrics. *)
  Format.printf "per-flow metrics over %.0f s:@." duration;
  Array.iteri
    (fun flow result ->
      let goodput =
        Stats.Metrics.effective_throughput_bps
          result.Experiments.Scenario.trace ~mss:1000 ~t0:0.0 ~t1:duration
      in
      Format.printf "  flow %d: %.1f Kbps goodput, %d drops, %a@." flow
        (goodput /. 1000.0)
        (Experiments.Scenario.drops t ~flow)
        Tcp.Counters.pp
        result.Experiments.Scenario.agent.Tcp.Agent.base
          .Tcp.Sender_common.counters)
    t.Experiments.Scenario.results;

  (* 2. Bottleneck queue dynamics. *)
  (match t.Experiments.Scenario.queue_occupancy with
  | Some series ->
    Format.printf "@.bottleneck queue occupancy:@.%s"
      (Stats.Ascii_plot.render ~width:68 ~height:10 ~x_label:"time (s)"
         ~y_label:"packets queued"
         [
           {
             Stats.Ascii_plot.label = "queue length";
             glyph = '#';
             points = Stats.Series.to_list series;
           };
         ])
  | None -> ());

  (* 3. The ns-2-style tracefile. *)
  let tracefile = Experiments.Scenario.tracefile t in
  let lines = String.split_on_char '\n' tracefile in
  Format.printf "@.ns-2-style tracefile (%d events, first 8 shown):@."
    (List.length lines - 1);
  List.iteri (fun i line -> if i < 8 then Format.printf "  %s@." line) lines
