(* Ten flows through a RED gateway — the paper's Figure 6 scenario.

   Runs the same staggered-start workload as the paper's §3.3 with the
   chosen variant (default RR) and draws the first flow's
   sequence-number trace as an ASCII plot, the same visualization the
   paper uses to contrast recovery mechanisms.

     dune exec examples/red_gateway.exe            # RR
     dune exec examples/red_gateway.exe newreno    # watch the stall *)

let () =
  let variant =
    if Array.length Sys.argv > 1 then
      match Core.Variant.of_string Sys.argv.(1) with
      | Ok v -> v
      | Error message ->
        prerr_endline message;
        exit 2
    else Core.Variant.Rr
  in
  let outcome = Experiments.Fig6.run ~variants:[ variant ] () in
  match outcome.Experiments.Fig6.results with
  | [ result ] ->
    Format.printf
      "flow 1 of 10 %s flows behind a RED gateway (0.8 Mbps, 6 s)@.@."
      (Core.Variant.name variant);
    print_string (Experiments.Fig6.plot result);
    Format.printf
      "@.flow-1 goodput %.1f Kbps; %d timeouts; %d recovery entries@."
      (result.Experiments.Fig6.throughput_bps /. 1000.0)
      result.Experiments.Fig6.timeouts
      result.Experiments.Fig6.fast_recoveries
  | _ -> assert false
