(* Fairness demo: RR sharing a bottleneck with TCP Reno flows.

   Five Reno flows and five RR flows compete on the paper's dumbbell
   for 60 seconds; the per-flow goodput shows whether RR starves its
   less aggressive neighbours (the §5 concern). Jain's fairness index
   is printed for the whole set.

     dune exec examples/fairness.exe *)

let flows = 10

let () =
  let config =
    {
      (Net.Dumbbell.paper_config ~flows) with
      gateway = Net.Dumbbell.Droptail { capacity = 25 };
    }
  in
  let variant_of flow = if flow < 5 then Core.Variant.Reno else Core.Variant.Rr in
  let duration = 60.0 in
  let spec =
    Experiments.Scenario.make ~topology:(Experiments.Scenario.dumbbell config)
      ~flows:
        (List.init flows (fun flow ->
             {
               (Experiments.Scenario.flow (variant_of flow)) with
               Experiments.Scenario.start = 0.1 *. float_of_int flow;
             }))
      ~params:{ Tcp.Params.default with rwnd = 20 }
      ~seed:3L ~duration ()
  in
  let t = Experiments.Scenario.run spec in
  let mss = Tcp.Params.default.Tcp.Params.mss in
  let goodputs =
    List.init flows (fun flow ->
        Stats.Metrics.effective_throughput_bps
          t.Experiments.Scenario.results.(flow).Experiments.Scenario.trace
          ~mss ~t0:5.0 ~t1:duration)
  in
  let header = [ "flow"; "variant"; "goodput (Kbps)"; "timeouts" ] in
  let rows =
    List.mapi
      (fun flow goodput ->
        let counters =
          t.Experiments.Scenario.results.(flow).Experiments.Scenario.agent
            .Tcp.Agent.base.Tcp.Sender_common.counters
        in
        [
          string_of_int flow;
          Core.Variant.name (variant_of flow);
          Printf.sprintf "%.1f" (goodput /. 1000.0);
          string_of_int counters.Tcp.Counters.timeouts;
        ])
      goodputs
  in
  print_string (Stats.Text_table.render ~header rows);
  let mean_of label flows_of =
    let selected = List.filteri (fun i _ -> flows_of i) goodputs in
    let mean =
      List.fold_left ( +. ) 0.0 selected /. float_of_int (List.length selected)
    in
    Format.printf "mean %s goodput: %.1f Kbps@." label (mean /. 1000.0)
  in
  mean_of "reno" (fun i -> i < 5);
  mean_of "rr" (fun i -> i >= 5);
  let sum = List.fold_left ( +. ) 0.0 goodputs in
  let sum_sq = List.fold_left (fun a x -> a +. (x *. x)) 0.0 goodputs in
  Format.printf "Jain fairness index: %.3f (1.0 = perfectly fair)@."
    (sum *. sum /. (float_of_int flows *. sum_sq))
